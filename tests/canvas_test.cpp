/// \file canvas_test.cpp
/// \brief Tests for the character-cell canvas and fill patterns.

#include <gtest/gtest.h>

#include <set>

#include "gfx/canvas.h"
#include "gfx/pattern.h"

namespace isis::gfx {
namespace {

TEST(RectTest, ContainsAndIntersects) {
  Rect r{2, 3, 4, 2};
  EXPECT_TRUE(r.Contains(2, 3));
  EXPECT_TRUE(r.Contains(5, 4));
  EXPECT_FALSE(r.Contains(6, 3));
  EXPECT_FALSE(r.Contains(2, 5));
  EXPECT_TRUE(r.Intersects(Rect{5, 4, 10, 10}));
  EXPECT_FALSE(r.Intersects(Rect{6, 3, 2, 2}));
  EXPECT_EQ(r.right(), 6);
  EXPECT_EQ(r.bottom(), 5);
}

TEST(CanvasTest, PutAndClip) {
  Canvas c(10, 4);
  c.Put(0, 0, 'a');
  c.Put(9, 3, 'z', kBold);
  c.Put(-1, 0, 'x');   // clipped silently
  c.Put(10, 0, 'x');
  c.Put(0, 4, 'x');
  EXPECT_EQ(c.At(0, 0).ch, 'a');
  EXPECT_EQ(c.At(9, 3).ch, 'z');
  EXPECT_EQ(c.At(9, 3).style, kBold);
  EXPECT_EQ(c.At(-1, 0).ch, ' ');  // out of bounds reads as blank
}

TEST(CanvasTest, TextClipsAtRightEdge) {
  Canvas c(5, 1);
  c.Text(3, 0, "abc");
  EXPECT_EQ(c.ToString(), "   ab\n");
}

TEST(CanvasTest, ToStringTrimsTrailingSpaces) {
  Canvas c(8, 2);
  c.Text(0, 0, "hi");
  EXPECT_EQ(c.ToString(), "hi\n\n");
}

TEST(CanvasTest, BoxDrawsBorders) {
  Canvas c(6, 4);
  c.Box(Rect{0, 0, 6, 4});
  std::string s = c.ToString();
  EXPECT_EQ(s,
            "+----+\n"
            "|    |\n"
            "|    |\n"
            "+----+\n");
}

TEST(CanvasTest, HeavyBox) {
  Canvas c(4, 3);
  c.HeavyBox(Rect{0, 0, 4, 3});
  EXPECT_EQ(c.ToString(),
            "####\n"
            "#  #\n"
            "####\n");
}

TEST(CanvasTest, FillAndLines) {
  Canvas c(5, 3);
  c.Fill(Rect{1, 1, 3, 1}, '*');
  c.HLine(0, 0, 5, '-');
  c.VLine(0, 0, 3, '|');
  EXPECT_EQ(c.At(0, 0).ch, '|');  // VLine drawn after HLine wins
  EXPECT_EQ(c.At(2, 1).ch, '*');
}

TEST(CanvasTest, AddStyleOrsBits) {
  Canvas c(4, 2);
  c.Text(0, 0, "ab", kReverse);
  c.AddStyle(Rect{0, 0, 4, 1}, kBold);
  EXPECT_EQ(c.At(0, 0).style, kBold | kReverse);
  EXPECT_EQ(c.At(3, 0).style, kBold);
}

TEST(CanvasTest, StyleStringEncodesBits) {
  Canvas c(4, 1);
  c.Put(0, 0, 'a', kBold);
  c.Put(1, 0, 'b', kReverse);
  c.Put(2, 0, 'c', kBold | kReverse);
  c.Put(3, 0, 'd', kDim);
  EXPECT_EQ(c.StyleString(), "brBd\n");
}

TEST(CanvasTest, ClearResets) {
  Canvas c(3, 1);
  c.Text(0, 0, "xyz", kBold);
  c.Clear();
  EXPECT_EQ(c.ToString(), "\n");
  EXPECT_EQ(c.At(0, 0).style, kPlain);
}

TEST(PatternTest, FirstSixteenDistinct) {
  // The engine assigns pattern indices uniquely; the first
  // kDistinctPatterns must also *render* distinguishably.
  std::set<std::string> renderings;
  for (int p = 0; p < kDistinctPatterns; ++p) {
    std::string r;
    for (int y = 0; y < 2; ++y) {
      for (int x = 0; x < 4; ++x) r += PatternGlyph(p, x, y);
    }
    EXPECT_TRUE(renderings.insert(r).second) << "pattern " << p;
  }
}

TEST(PatternTest, GlyphIsPeriodicAndTotal) {
  EXPECT_EQ(PatternGlyph(3, 0, 0), PatternGlyph(3, 4, 2));
  EXPECT_EQ(PatternGlyph(3, -4, -2), PatternGlyph(3, 0, 0));
  EXPECT_EQ(PatternGlyph(19, 0, 0), PatternGlyph(19 % kDistinctPatterns, 0, 0));
  EXPECT_EQ(PatternGlyph(-1, 0, 0), PatternGlyph(0, 0, 0));
}

TEST(PatternTest, TagsUniquePerIndex) {
  EXPECT_EQ(PatternTag(7), "p07");
  EXPECT_NE(PatternTag(1), PatternTag(17));
}

TEST(PatternTest, SetBorderFramesWithBlanks) {
  Canvas c(8, 4);
  c.Fill(Rect{0, 0, 8, 4}, '?');
  FillPattern(&c, Rect{0, 0, 8, 4}, 4, /*set_border=*/true);
  // Border cells blank, interior patterned.
  EXPECT_EQ(c.At(0, 0).ch, ' ');
  EXPECT_EQ(c.At(7, 3).ch, ' ');
  EXPECT_EQ(c.At(1, 1).ch, PatternGlyph(4, 0, 0));
}

TEST(PatternTest, SwatchBorder) {
  Canvas c(6, 1);
  PatternSwatch(&c, 0, 0, 6, 4, /*set_border=*/true);
  EXPECT_EQ(c.At(0, 0).ch, ' ');
  EXPECT_EQ(c.At(5, 0).ch, ' ');
  EXPECT_EQ(c.At(1, 0).ch, PatternGlyph(4, 0, 0));
  // No border variant fills edge to edge.
  PatternSwatch(&c, 0, 0, 6, 4, /*set_border=*/false);
  EXPECT_NE(c.At(0, 0).ch, ' ');
}

}  // namespace
}  // namespace isis::gfx
