/// \file figure_golden_test.cpp
/// \brief Golden-screen tests: each of the paper's twelve figures must
/// reproduce byte-for-byte against the checked-in golden rendering
/// (tests/goldens/figureN.txt).
///
/// If a deliberate rendering change alters the screens, regenerate with:
///   ./build/examples/instrumental_music --figures-only
/// and split the output back into the golden files (see
/// tests/goldens/README note in DESIGN.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "datasets/instrumental_music.h"
#include "datasets/session_script.h"
#include "ui/controller.h"

#ifndef ISIS_GOLDEN_DIR
#define ISIS_GOLDEN_DIR "tests/goldens"
#endif

namespace isis::ui {
namespace {

Result<std::string> ReadGolden(const std::string& name) {
  // ISIS_GOLDEN_DIR (env) overrides the compiled-in default, so the binary
  // can run from any working directory or against relocated goldens.
  const char* env_dir = std::getenv("ISIS_GOLDEN_DIR");
  std::string dir = env_dir != nullptr && env_dir[0] != '\0'
                        ? std::string(env_dir)
                        : std::string(ISIS_GOLDEN_DIR);
  std::string path = dir + "/" + name + ".txt";
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open golden '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class FigureGoldenTest : public ::testing::TestWithParam<int> {};

TEST_P(FigureGoldenTest, ScreenMatchesGolden) {
  int figure = GetParam();
  const auto& figs = datasets::PaperSessionFigures();
  SessionController session(datasets::BuildInstrumentalMusic());
  for (int i = 0; i < figure; ++i) {
    ASSERT_TRUE(session.RunScript(figs[i].script).ok()) << figs[i].name;
  }
  Result<std::string> golden = ReadGolden(figs[figure - 1].name);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_EQ(session.Render().canvas.ToString(), *golden)
      << "figure " << figure
      << " diverged from the golden screen; if the change is intentional, "
         "regenerate tests/goldens/ from "
         "`instrumental_music --figures-only`";
}

TEST_P(FigureGoldenTest, StyleMapMatchesGolden) {
  // The paper's visual conventions (reverse-video baseclass names, bold
  // selections, dim chrome) are pinned per cell alongside the characters.
  int figure = GetParam();
  const auto& figs = datasets::PaperSessionFigures();
  SessionController session(datasets::BuildInstrumentalMusic());
  for (int i = 0; i < figure; ++i) {
    ASSERT_TRUE(session.RunScript(figs[i].script).ok()) << figs[i].name;
  }
  Result<std::string> golden =
      ReadGolden(figs[figure - 1].name + ".style");
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_EQ(session.Render().canvas.StyleString(), *golden)
      << "figure " << figure
      << " style map diverged; regenerate tests/goldens/ from "
         "`instrumental_music --styles-only` if intentional";
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, FigureGoldenTest,
                         ::testing::Range(1, 13),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "figure" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace isis::ui
