/// \file result_cache_test.cpp
/// \brief The query-result cache (query/cache.h): key normalization,
/// selective delta-driven invalidation, LRU bounds, version-stamp safety,
/// and the server's cached read path against a cache-disabled oracle.
///
/// The oracle tests are the heart: a cached server and an uncached server
/// driven through identical randomized mutation/query interleavings must
/// answer every query with byte-identical payloads -- the cache is an
/// optimization, never an approximation. The concurrent variant runs under
/// ThreadSanitizer in CI (ISIS_SANITIZE=thread), alongside server_test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "datasets/scaled_music.h"
#include "live/deps.h"
#include "query/cache.h"
#include "query/eval.h"
#include "query/parser.h"
#include "sdm/value.h"
#include "server/loopback.h"
#include "server/proto.h"
#include "server/session.h"

namespace isis::query {
namespace {

using datasets::BuildScaledMusic;
using datasets::ResolveScaledMusic;
using datasets::ScaledMusicHandles;
using server::Frame;
using server::JoinFields;
using server::LoopbackClient;
using server::MsgType;
using server::Server;
using server::ServerOptions;

Predicate MustParse(const sdm::Database& db, ClassId cls,
                    const std::string& text) {
  Result<Predicate> p = ParsePredicate(db, cls, text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return *p;
}

std::string KeyOf(const sdm::Database& db, ClassId cls,
                  const std::string& text) {
  return ResultCache::NormalizeKey(MustParse(db, cls, text), cls);
}

/// The cache client protocol, as the server's DoQuery uses it: lookup,
/// else evaluate, stamp and insert.
std::shared_ptr<const sdm::EntitySet> CachedEval(ResultCache* rc,
                                                 sdm::Database& db,
                                                 ClassId cls,
                                                 const Predicate& pred) {
  const std::string key = ResultCache::NormalizeKey(pred, cls);
  std::shared_ptr<const sdm::EntitySet> hit = rc->Lookup(key);
  if (hit != nullptr) return hit;
  const std::uint64_t v0 = db.version();
  auto result = std::make_shared<const sdm::EntitySet>(
      Evaluator(db).EvaluateSubclass(pred, cls));
  rc->Insert(key,
             live::FlattenForCache(live::AnalyzeAdHoc(db.schema(), cls, pred)),
             result, v0);
  return result;
}

// --- Key normalization. ---

TEST(ResultCacheTest, KeyIgnoresAtomAndClauseOrderAndDuplicates) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);

  // AND clauses commute.
  EXPECT_EQ(
      KeyOf(db, h.musicians, "e.plays ]= {inst0} and e.union = {yes}"),
      KeyOf(db, h.musicians, "e.union = {yes} and e.plays ]= {inst0}"));
  // OR atoms commute and duplicates collapse.
  EXPECT_EQ(
      KeyOf(db, h.musicians, "e.plays ]= {inst0} or e.plays ]= {inst1}"),
      KeyOf(db, h.musicians,
            "e.plays ]= {inst1} or e.plays ]= {inst0} or e.plays ]= {inst1}"));
  // A duplicated AND clause collapses.
  EXPECT_EQ(KeyOf(db, h.musicians, "e.union = {yes} and e.union = {yes}"),
            KeyOf(db, h.musicians, "e.union = {yes}"));
}

TEST(ResultCacheTest, KeySeparatesFormClassAndPredicate) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);

  // AND vs OR of the same two atoms are different queries.
  EXPECT_NE(
      KeyOf(db, h.musicians, "e.plays ]= {inst0} and e.union = {yes}"),
      KeyOf(db, h.musicians, "e.plays ]= {inst0} or e.union = {yes}"));
  // Same predicate text against different candidate classes.
  Predicate p = MustParse(db, h.music_groups, "e.size = {3}");
  EXPECT_NE(ResultCache::NormalizeKey(p, h.music_groups),
            ResultCache::NormalizeKey(p, h.families));
  // Different constants.
  EXPECT_NE(KeyOf(db, h.music_groups, "e.size = {3}"),
            KeyOf(db, h.music_groups, "e.size = {4}"));
}

// --- Hit/miss protocol. ---

TEST(ResultCacheTest, RepeatLookupHitsWithIdenticalResult) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate p = MustParse(db, h.musicians, "e.plays ]= {inst0}");
  auto first = CachedEval(&rc, db, h.musicians, p);
  auto second = CachedEval(&rc, db, h.musicians, p);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(second.get(), first.get());  // The same stored set, not a copy.

  ResultCache::Counters c = rc.counters();
  EXPECT_EQ(c.misses, 1);
  EXPECT_EQ(c.hits, 1);
  EXPECT_EQ(c.insertions, 1);
}

// --- Selective invalidation. ---

TEST(ResultCacheTest, AttributeDeltaEvictsOnlyDependentEntries) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate plays_q = MustParse(db, h.musicians, "e.plays ]= {inst0}");
  Predicate size_q = MustParse(db, h.music_groups, "e.size = {3}");
  CachedEval(&rc, db, h.musicians, plays_q);
  CachedEval(&rc, db, h.music_groups, size_q);
  const std::string plays_key =
      ResultCache::NormalizeKey(plays_q, h.musicians);
  const std::string size_key =
      ResultCache::NormalizeKey(size_q, h.music_groups);
  ASSERT_TRUE(rc.Peek(plays_key));
  ASSERT_TRUE(rc.Peek(size_key));

  // Mutate `plays` of one musician: the plays query must go, the size
  // query must survive.
  EntityId m = *db.Members(h.musicians).begin();
  ASSERT_TRUE(db.AddToMulti(m, h.plays, *db.Members(h.instruments).begin())
                  .ok());
  EXPECT_FALSE(rc.Peek(plays_key));
  EXPECT_TRUE(rc.Peek(size_key));
  EXPECT_GE(rc.counters().invalidations, 1);
  EXPECT_EQ(rc.counters().schema_flushes, 0);
  EXPECT_EQ(rc.counters().version_flushes, 0);

  // The cached answer reflects the mutation after repopulating.
  auto fresh = CachedEval(&rc, db, h.musicians, plays_q);
  sdm::EntitySet oracle =
      Evaluator(db).EvaluateSubclass(plays_q, h.musicians);
  EXPECT_EQ(*fresh, oracle);
}

TEST(ResultCacheTest, MembershipDeltaEvictsByCandidateClass) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate plays_q = MustParse(db, h.musicians, "e.plays ]= {inst0}");
  Predicate size_q = MustParse(db, h.music_groups, "e.size = {3}");
  CachedEval(&rc, db, h.musicians, plays_q);
  CachedEval(&rc, db, h.music_groups, size_q);

  ASSERT_TRUE(db.CreateEntity(h.musicians, "brand_new_musician").ok());
  EXPECT_FALSE(rc.Peek(ResultCache::NormalizeKey(plays_q, h.musicians)));
  EXPECT_TRUE(rc.Peek(ResultCache::NormalizeKey(size_q, h.music_groups)));
}

TEST(ResultCacheTest, SchemaChangeFlushesEverything) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate plays_q = MustParse(db, h.musicians, "e.plays ]= {inst0}");
  Predicate size_q = MustParse(db, h.music_groups, "e.size = {3}");
  CachedEval(&rc, db, h.musicians, plays_q);
  CachedEval(&rc, db, h.music_groups, size_q);

  // Deleting an attribute *neither query reads* still flushes: schema
  // changes rewrite the dependency universe, so the lattice's top applies.
  ASSERT_TRUE(db.DeleteAttribute(h.popular).ok());
  EXPECT_FALSE(rc.Peek(ResultCache::NormalizeKey(plays_q, h.musicians)));
  EXPECT_FALSE(rc.Peek(ResultCache::NormalizeKey(size_q, h.music_groups)));
  EXPECT_EQ(rc.counters().schema_flushes, 1);
  EXPECT_EQ(rc.size(), 0);
}

TEST(ResultCacheTest, UnexplainedVersionAdvanceFlushes) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate size_q = MustParse(db, h.music_groups, "e.size = {3}");
  CachedEval(&rc, db, h.music_groups, size_q);

  // Interning a never-seen value grows a predefined extent without any
  // observer delta -- only the version bump betrays it. The next cache
  // access must notice and flush.
  ASSERT_TRUE(db.InternValue(sdm::Value::Integer(123456789)).ok());
  EXPECT_FALSE(rc.Peek(ResultCache::NormalizeKey(size_q, h.music_groups)));
  EXPECT_EQ(rc.counters().version_flushes, 1);
}

// --- Capacity and stamps. ---

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache::Options opts;
  opts.capacity = 2;
  ResultCache rc(&db, opts);

  Predicate q1 = MustParse(db, h.musicians, "e.plays ]= {inst0}");
  Predicate q2 = MustParse(db, h.musicians, "e.plays ]= {inst1}");
  Predicate q3 = MustParse(db, h.musicians, "e.union = {yes}");
  CachedEval(&rc, db, h.musicians, q1);
  CachedEval(&rc, db, h.musicians, q2);
  CachedEval(&rc, db, h.musicians, q1);  // Touch q1: q2 is now coldest.
  CachedEval(&rc, db, h.musicians, q3);  // Evicts q2.

  EXPECT_TRUE(rc.Peek(ResultCache::NormalizeKey(q1, h.musicians)));
  EXPECT_FALSE(rc.Peek(ResultCache::NormalizeKey(q2, h.musicians)));
  EXPECT_TRUE(rc.Peek(ResultCache::NormalizeKey(q3, h.musicians)));
  EXPECT_EQ(rc.counters().evictions, 1);
  EXPECT_EQ(rc.size(), 2);
}

TEST(ResultCacheTest, InsertRefusesAStaleVersionStamp) {
  auto ws = BuildScaledMusic(1);
  sdm::Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache rc(&db);

  Predicate q = MustParse(db, h.music_groups, "e.size = {3}");
  const std::string key = ResultCache::NormalizeKey(q, h.music_groups);
  const std::uint64_t v0 = db.version();
  auto result = std::make_shared<const sdm::EntitySet>(
      Evaluator(db).EvaluateSubclass(q, h.music_groups));

  // The database moves between evaluation and insertion: the stamp is
  // stale and the insert must be refused (the result may be torn).
  EntityId g = *db.Members(h.music_groups).begin();
  Result<EntityId> four = db.InternValue(sdm::Value::Integer(4));
  ASSERT_TRUE(four.ok());
  ASSERT_TRUE(db.SetSingle(g, h.size, *four).ok());
  rc.Insert(key,
            live::FlattenForCache(
                live::AnalyzeAdHoc(db.schema(), h.music_groups, q)),
            result, v0);
  EXPECT_FALSE(rc.Peek(key));
}

TEST(ResultCacheTest, NonObservingCacheMayOutliveTheDatabase) {
  auto ws = BuildScaledMusic(1);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  ResultCache::Options opts;
  opts.observe = false;
  auto rc = std::make_unique<ResultCache>(&ws->db(), opts);

  Predicate q = MustParse(ws->db(), h.music_groups, "e.size = {3}");
  CachedEval(rc.get(), ws->db(), h.music_groups, q);
  EXPECT_TRUE(rc->Peek(ResultCache::NormalizeKey(q, h.music_groups)));

  // Any mutation flushes on the next access (no deltas, only versions).
  EntityId g = *ws->db().Members(h.music_groups).begin();
  Result<EntityId> nine = ws->db().InternValue(sdm::Value::Integer(9));
  ASSERT_TRUE(nine.ok());
  ASSERT_TRUE(ws->db().SetSingle(g, h.size, *nine).ok());
  EXPECT_FALSE(rc->Peek(ResultCache::NormalizeKey(q, h.music_groups)));

  // The REPL's undo/load path: the database dies first. Destroying the
  // cache afterwards must not touch it.
  ws.reset();
  rc.reset();
}

// --- Server-level oracle: cached vs uncached, randomized interleaving. ---

std::string StripCacheLine(std::string s) {
  std::size_t pos = s.rfind("\ncache: ");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

TEST(ResultCacheOracleTest, RandomizedInterleavingMatchesUncachedServer) {
  constexpr int kScale = 2;  // 32 musicians, 4 instruments, 6 groups.
  constexpr int kSessions = 3;
  constexpr int kOps = 600;

  ServerOptions cached_opts;
  cached_opts.threads = 2;
  ServerOptions plain_opts;
  plain_opts.threads = 2;
  plain_opts.result_cache = false;

  auto cached_r = Server::Open(BuildScaledMusic(kScale), cached_opts);
  auto plain_r = Server::Open(BuildScaledMusic(kScale), plain_opts);
  ASSERT_TRUE(cached_r.ok());
  ASSERT_TRUE(plain_r.ok());
  std::unique_ptr<Server> cached = std::move(cached_r).ValueOrDie();
  std::unique_ptr<Server> plain = std::move(plain_r).ValueOrDie();

  std::vector<std::unique_ptr<LoopbackClient>> cached_clients;
  std::vector<std::unique_ptr<LoopbackClient>> plain_clients;
  for (int s = 0; s < kSessions; ++s) {
    cached_clients.push_back(std::make_unique<LoopbackClient>(cached.get()));
    plain_clients.push_back(std::make_unique<LoopbackClient>(plain.get()));
    ASSERT_TRUE(
        cached_clients.back()->Connect("c" + std::to_string(s)).ok());
    ASSERT_TRUE(plain_clients.back()->Connect("p" + std::to_string(s)).ok());
  }

  const std::vector<std::pair<std::string, std::string>> pool = {
      {"musicians", "e.plays ]= {inst0}"},
      {"musicians", "e.plays ]= {inst1}"},
      {"musicians", "e.plays ]= {inst0} and e.union = {yes}"},
      {"musicians", "e.plays ]= {inst2} or e.plays ]= {inst3}"},
      {"music_groups", "e.size = {3}"},
      {"music_groups", "e.size = {4} and e.members.plays ]= {inst1}"},
      {"instruments", "e.popular = {yes}"},
      {"music_groups", "e.includes ]= {family0}"},
  };

  std::mt19937 rng(20260808);
  for (int op = 0; op < kOps; ++op) {
    const int s = static_cast<int>(rng() % kSessions);
    const int kind = static_cast<int>(rng() % 10);
    if (kind == 0) {
      // Mutation, applied to both servers: random musician plays a random
      // instrument.
      const std::string musician =
          "musician" + std::to_string(rng() % (16 * kScale));
      const std::string inst = "inst" + std::to_string(rng() % (2 * kScale));
      Status cs =
          cached_clients[s]->Assign("musicians", musician, "plays", inst);
      Status ps =
          plain_clients[s]->Assign("musicians", musician, "plays", inst);
      ASSERT_EQ(cs.ok(), ps.ok()) << cs.ToString() << " vs " << ps.ToString();
    } else if (kind == 1) {
      // Explain: identical plans; only the trailing cache line may differ
      // (hit/miss vs bypass).
      const auto& q = pool[rng() % pool.size()];
      Result<Frame> cf = cached_clients[s]->Call(
          MsgType::kExplain, JoinFields({q.first, q.second}));
      Result<Frame> pf = plain_clients[s]->Call(
          MsgType::kExplain, JoinFields({q.first, q.second}));
      ASSERT_TRUE(cf.ok());
      ASSERT_TRUE(pf.ok());
      EXPECT_EQ(StripCacheLine(cf->payload), StripCacheLine(pf->payload));
      EXPECT_EQ(pf->payload.substr(StripCacheLine(pf->payload).size()),
                "\ncache: bypass")
          << "an uncached server's explain must report bypass";
    } else {
      // Query: byte-identical payloads, every time.
      const auto& q = pool[rng() % pool.size()];
      Result<Frame> cf = cached_clients[s]->Call(
          MsgType::kQuery, JoinFields({q.first, q.second}));
      Result<Frame> pf = plain_clients[s]->Call(
          MsgType::kQuery, JoinFields({q.first, q.second}));
      ASSERT_TRUE(cf.ok());
      ASSERT_TRUE(pf.ok());
      ASSERT_EQ(cf->type, MsgType::kQueryResult);
      ASSERT_EQ(pf->type, MsgType::kQueryResult);
      ASSERT_EQ(cf->payload, pf->payload)
          << "op " << op << " query " << q.first << " " << q.second;
    }
  }

  // The cache must have actually been exercised, or this test proves
  // nothing.
  ASSERT_NE(cached->result_cache(), nullptr);
  EXPECT_GT(cached->result_cache()->counters().hits, 0);
  EXPECT_GT(cached->result_cache()->counters().invalidations +
                cached->result_cache()->counters().version_flushes +
                cached->result_cache()->counters().schema_flushes,
            0);
  EXPECT_EQ(plain->result_cache(), nullptr);
  cached->Shutdown();
  plain->Shutdown();
}

// --- Concurrent convergence (the TSan target). ---

TEST(ResultCacheTest, ConcurrentCachedSessionsConvergeToOracle) {
  constexpr int kScale = 2;
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 150;
  const char* const probes[][2] = {
      {"musicians", "e.plays ]= {inst0}"},
      {"musicians", "e.plays ]= {inst1}"},
      {"music_groups", "e.size = {3}"},
  };

  ServerOptions opts;
  opts.threads = 4;
  auto opened = Server::Open(BuildScaledMusic(kScale), opts);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

  // Disjoint idempotent writes (thread t owns musicians [t*slice,
  // (t+1)*slice) and always writes musician m plays inst(m%2)), so the
  // final state is interleaving-independent.
  const int total = 16 * kScale;
  const int slice = total / kThreads;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      LoopbackClient client(srv.get());
      if (!client.Connect("w" + std::to_string(t)).ok()) {
        ++failures;
        return;
      }
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (op % 5 == 4 && slice > 0) {
          const int m = t * slice + (op / 5) % slice;
          if (!client
                   .Assign("musicians", "musician" + std::to_string(m),
                           "plays", "inst" + std::to_string(m % 2))
                   .ok()) {
            ++failures;
            return;
          }
        } else {
          const char* const* q = probes[op % 3];
          Result<Frame> resp =
              client.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
          if (!resp.ok() || resp->type != MsgType::kQueryResult) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);

  // Oracle: a fresh uncached single-threaded server with the same final
  // writes applied once. Every probe answer must match byte-for-byte.
  ServerOptions oracle_opts;
  oracle_opts.threads = 1;
  oracle_opts.result_cache = false;
  auto oracle_r = Server::Open(BuildScaledMusic(kScale), oracle_opts);
  ASSERT_TRUE(oracle_r.ok());
  std::unique_ptr<Server> oracle = std::move(oracle_r).ValueOrDie();
  LoopbackClient oracle_client(oracle.get());
  ASSERT_TRUE(oracle_client.Connect("oracle").ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < slice; ++i) {
      const int m = t * slice + i;
      ASSERT_TRUE(oracle_client
                      .Assign("musicians", "musician" + std::to_string(m),
                              "plays", "inst" + std::to_string(m % 2))
                      .ok());
    }
  }
  LoopbackClient probe(srv.get());
  ASSERT_TRUE(probe.Connect("probe").ok());
  for (const auto& q : probes) {
    Result<Frame> got = probe.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
    Result<Frame> want =
        oracle_client.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->payload, want->payload) << q[0] << " " << q[1];
  }
  srv->Shutdown();
  oracle->Shutdown();
}

}  // namespace
}  // namespace isis::query
