/// \file value_test.cpp
/// \brief Unit tests for the primitive values of the predefined baseclasses.

#include <gtest/gtest.h>

#include "sdm/value.h"

namespace isis::sdm {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Integer(42).kind(), BaseKind::kInteger);
  EXPECT_EQ(Value::Integer(42).integer(), 42);
  EXPECT_EQ(Value::Real(2.5).kind(), BaseKind::kReal);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real(), 2.5);
  EXPECT_EQ(Value::Boolean(true).kind(), BaseKind::kBoolean);
  EXPECT_TRUE(Value::Boolean(true).boolean());
  EXPECT_EQ(Value::String("oboe").kind(), BaseKind::kString);
  EXPECT_EQ(Value::String("oboe").str(), "oboe");
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Integer(-7).ToDisplayString(), "-7");
  EXPECT_EQ(Value::Real(3.5).ToDisplayString(), "3.5");
  // The paper's Booleans are the Yes/No class.
  EXPECT_EQ(Value::Boolean(true).ToDisplayString(), "YES");
  EXPECT_EQ(Value::Boolean(false).ToDisplayString(), "NO");
  EXPECT_EQ(Value::String("piano").ToDisplayString(), "piano");
}

TEST(ValueTest, ParseInteger) {
  Result<Value> v = Value::Parse(BaseKind::kInteger, "123");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->integer(), 123);
  EXPECT_TRUE(Value::Parse(BaseKind::kInteger, "12x").status().IsParseError());
  EXPECT_TRUE(Value::Parse(BaseKind::kInteger, "").status().IsParseError());
  EXPECT_EQ(Value::Parse(BaseKind::kInteger, "-5")->integer(), -5);
}

TEST(ValueTest, ParseReal) {
  EXPECT_DOUBLE_EQ(Value::Parse(BaseKind::kReal, "2.75")->real(), 2.75);
  EXPECT_DOUBLE_EQ(Value::Parse(BaseKind::kReal, "4")->real(), 4.0);
  EXPECT_TRUE(Value::Parse(BaseKind::kReal, "four").status().IsParseError());
}

TEST(ValueTest, ParseBooleanAcceptsYesNoVariants) {
  EXPECT_TRUE(Value::Parse(BaseKind::kBoolean, "YES")->boolean());
  EXPECT_TRUE(Value::Parse(BaseKind::kBoolean, "yes")->boolean());
  EXPECT_TRUE(Value::Parse(BaseKind::kBoolean, "true")->boolean());
  EXPECT_FALSE(Value::Parse(BaseKind::kBoolean, "NO")->boolean());
  EXPECT_FALSE(Value::Parse(BaseKind::kBoolean, "n")->boolean());
  EXPECT_TRUE(
      Value::Parse(BaseKind::kBoolean, "maybe").status().IsParseError());
}

TEST(ValueTest, ParseStringIsIdentity) {
  EXPECT_EQ(Value::Parse(BaseKind::kString, "any text")->str(), "any text");
  EXPECT_EQ(Value::Parse(BaseKind::kString, "")->str(), "");
}

TEST(ValueTest, ParseRejectsUserKind) {
  EXPECT_TRUE(
      Value::Parse(BaseKind::kNone, "x").status().IsInvalidArgument());
}

TEST(ValueTest, ParsePrintRoundTrip) {
  const Value cases[] = {
      Value::Integer(0),      Value::Integer(-99), Value::Real(0.125),
      Value::Boolean(false),  Value::String("a b"),
  };
  for (const Value& v : cases) {
    Result<Value> back = Value::Parse(v.kind(), v.ToDisplayString());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(*back == v) << v.ToDisplayString();
  }
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value::Integer(1), Value::Integer(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_TRUE(Value::Integer(3) == Value::Integer(3));
  EXPECT_FALSE(Value::Integer(3) == Value::Real(3.0));  // identity, not ==
}

TEST(ValueTest, BaseKindNames) {
  EXPECT_STREQ(BaseKindToString(BaseKind::kInteger), "INTEGER");
  EXPECT_STREQ(BaseKindToString(BaseKind::kBoolean), "YES/NO");
  EXPECT_STREQ(BaseKindToString(BaseKind::kString), "STRING");
  EXPECT_STREQ(BaseKindToString(BaseKind::kReal), "REAL");
}

}  // namespace
}  // namespace isis::sdm
