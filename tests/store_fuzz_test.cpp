/// \file store_fuzz_test.cpp
/// \brief Robustness fuzzing of the store loader: arbitrary corruption of a
/// valid save must never crash, and must either load a fully §2-consistent
/// workspace or fail with a clean error.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

namespace isis::store {
namespace {

class StoreFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    blob_ = Save(*datasets::BuildInstrumentalMusic());
  }
  std::string blob_;
};

TEST_P(StoreFuzzTest, RandomByteMutationsNeverCrashOrCorrupt) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = blob_;
    int edits = 1 + static_cast<int>(rng.Below(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:  // flip to a random printable byte
          mutated[pos] = static_cast<char>('!' + rng.Below(90));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    Result<std::unique_ptr<query::Workspace>> loaded = Load(mutated);
    if (loaded.ok()) {
      // If it loads, it must be fully consistent — the loader's invariant.
      Status st = sdm::ConsistencyChecker((*loaded)->db()).Check();
      EXPECT_TRUE(st.ok()) << "trial " << trial << ": " << st.ToString();
    } else {
      EXPECT_FALSE(loaded.status().ok());
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST_P(StoreFuzzTest, RandomLineDeletionsNeverCrashOrCorrupt) {
  Rng rng(GetParam() * 31 + 7);
  std::vector<std::string> lines = Split(blob_, '\n');
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> mutated = lines;
    int removals = 1 + static_cast<int>(rng.Below(3));
    for (int r = 0; r < removals && mutated.size() > 2; ++r) {
      mutated.erase(mutated.begin() +
                    static_cast<long>(rng.Below(mutated.size())));
    }
    Result<std::unique_ptr<query::Workspace>> loaded =
        Load(Join(mutated, "\n"));
    if (loaded.ok()) {
      Status st = sdm::ConsistencyChecker((*loaded)->db()).Check();
      EXPECT_TRUE(st.ok()) << "trial " << trial << ": " << st.ToString();
    }
  }
}

TEST_P(StoreFuzzTest, LineShufflesWithinSectionsStillValidate) {
  // Reordering whole records can break monotonic-id restore (a clean
  // ParseError) but must never produce an inconsistent load.
  Rng rng(GetParam() + 1000);
  std::vector<std::string> lines = Split(blob_, '\n');
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> mutated = lines;
    for (int s = 0; s < 4; ++s) {
      size_t i = rng.Below(mutated.size());
      size_t j = rng.Below(mutated.size());
      std::swap(mutated[i], mutated[j]);
    }
    Result<std::unique_ptr<query::Workspace>> loaded =
        Load(Join(mutated, "\n"));
    if (loaded.ok()) {
      Status st = sdm::ConsistencyChecker((*loaded)->db()).Check();
      EXPECT_TRUE(st.ok()) << "trial " << trial << ": " << st.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace isis::store
