/// \file relational_completeness_test.cpp
/// \brief Verifies the paper's §2 claim: "These predicates provide the full
/// power of relational algebra."
///
/// For each relational-algebra operator we build the relational answer with
/// the baseline engine over the standard SDM -> relational encoding, and
/// the same query as an ISIS derived subclass / derived attribute; the two
/// answers must coincide.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/eval.h"
#include "rel/encode.h"
#include "rel/relation.h"

namespace isis {
namespace {

using query::Atom;
using query::NormalForm;
using query::Predicate;
using query::SetOp;
using query::Term;
using query::Workspace;
using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

class RelationalCompletenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    music_groups_ = *s.FindClass("music_groups");
    families_ = *s.FindClass("families");
    plays_ = *s.FindAttribute(musicians_, "plays");
    family_ = *s.FindAttribute(instruments_, "family");
    popular_ = *s.FindAttribute(instruments_, "popular");
    union_ = *s.FindAttribute(musicians_, "union");
    size_ = *s.FindAttribute(music_groups_, "size");
    rel_ = *rel::EncodeDatabase(*db_);
  }

  /// Evaluates a one-atom derived subclass of `v`.
  EntitySet Derived(ClassId v, Atom atom,
                    NormalForm form = NormalForm::kConjunctive) {
    Predicate p;
    p.AddAtom(std::move(atom), 0);
    p.form = form;
    query::Evaluator eval(*db_);
    query::PredicateContext ctx;
    ctx.candidate_class = v;
    EXPECT_TRUE(eval.TypeCheck(p, ctx).ok());
    return eval.EvaluateSubclass(p, v);
  }

  /// Converts an ISIS entity set to the relational unary encoding.
  rel::Relation AsRelation(const EntitySet& set) {
    rel::Relation out({"name"});
    for (EntityId e : set) {
      EXPECT_TRUE(out.Insert({rel::EncodeEntity(*db_, e)}).ok());
    }
    return out;
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  rel::RelDatabase rel_;
  ClassId musicians_, instruments_, music_groups_, families_;
  AttributeId plays_, family_, popular_, union_, size_;
};

TEST_F(RelationalCompletenessTest, Selection) {
  // sigma_{popular = YES}(instruments).
  const rel::Relation* pop = *rel_.Find("instruments_popular");
  rel::Relation relational = *rel::Project(
      *rel::Select(*pop, {rel::Condition::WithConst(
                             1, rel::CompareOp::kEq,
                             rel::Value::Boolean(true))}),
      {"name"});
  Atom atom;
  atom.lhs = Term::Candidate({popular_});
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Constant({db_->InternBoolean(true)});
  EXPECT_EQ(AsRelation(Derived(instruments_, atom)), relational);
  EXPECT_EQ(relational.size(), 8u);
}

TEST_F(RelationalCompletenessTest, SelectionWithComparison) {
  // sigma_{size > 3}(music_groups).
  const rel::Relation* size_rel = *rel_.Find("music_groups_size");
  rel::Relation relational = *rel::Project(
      *rel::Select(*size_rel, {rel::Condition::WithConst(
                                  1, rel::CompareOp::kGt,
                                  rel::Value::Integer(3))}),
      {"name"});
  Atom atom;
  atom.lhs = Term::Candidate({size_});
  atom.op = SetOp::kGreater;
  atom.rhs = Term::Constant({db_->InternInteger(3)});
  EXPECT_EQ(AsRelation(Derived(music_groups_, atom)), relational);
}

TEST_F(RelationalCompletenessTest, UnionViaDisjunction) {
  // union of unpopular instruments and percussion instruments.
  rel::Relation unpopular = *rel::Project(
      *rel::Select(**rel_.Find("instruments_popular"),
                   {rel::Condition::WithConst(1, rel::CompareOp::kEq,
                                              rel::Value::Boolean(false))}),
      {"name"});
  rel::Relation percussion = *rel::Project(
      *rel::Select(**rel_.Find("instruments_family"),
                   {rel::Condition::WithConst(
                       1, rel::CompareOp::kEq,
                       rel::Value::String("percussion"))}),
      {"name"});
  rel::Relation relational = *rel::Union(unpopular, percussion);

  Predicate p;
  Atom a1;
  a1.lhs = Term::Candidate({popular_});
  a1.op = SetOp::kEqual;
  a1.rhs = Term::Constant({db_->InternBoolean(false)});
  Atom a2;
  a2.lhs = Term::Candidate({family_});
  a2.op = SetOp::kEqual;
  a2.rhs = Term::Constant({E(families_, "percussion")});
  p.AddAtom(a1, 0);
  p.AddAtom(a2, 1);
  p.form = NormalForm::kDisjunctive;  // clause1 OR clause2
  query::Evaluator eval(*db_);
  EXPECT_EQ(AsRelation(eval.EvaluateSubclass(p, instruments_)), relational);
}

TEST_F(RelationalCompletenessTest, IntersectionViaConjunction) {
  rel::Relation popular = *rel::Project(
      *rel::Select(**rel_.Find("instruments_popular"),
                   {rel::Condition::WithConst(1, rel::CompareOp::kEq,
                                              rel::Value::Boolean(true))}),
      {"name"});
  rel::Relation stringed = *rel::Project(
      *rel::Select(**rel_.Find("instruments_family"),
                   {rel::Condition::WithConst(
                       1, rel::CompareOp::kEq,
                       rel::Value::String("stringed"))}),
      {"name"});
  rel::Relation relational = *rel::Intersect(popular, stringed);

  Predicate p;
  Atom a1;
  a1.lhs = Term::Candidate({popular_});
  a1.op = SetOp::kEqual;
  a1.rhs = Term::Constant({db_->InternBoolean(true)});
  Atom a2;
  a2.lhs = Term::Candidate({family_});
  a2.op = SetOp::kEqual;
  a2.rhs = Term::Constant({E(families_, "stringed")});
  p.AddAtom(a1, 0);
  p.AddAtom(a2, 1);
  p.form = NormalForm::kConjunctive;
  query::Evaluator eval(*db_);
  EXPECT_EQ(AsRelation(eval.EvaluateSubclass(p, instruments_)), relational);
}

TEST_F(RelationalCompletenessTest, DifferenceViaNegation) {
  // stringed instruments that are NOT popular.
  rel::Relation stringed = *rel::Project(
      *rel::Select(**rel_.Find("instruments_family"),
                   {rel::Condition::WithConst(
                       1, rel::CompareOp::kEq,
                       rel::Value::String("stringed"))}),
      {"name"});
  rel::Relation popular = *rel::Project(
      *rel::Select(**rel_.Find("instruments_popular"),
                   {rel::Condition::WithConst(1, rel::CompareOp::kEq,
                                              rel::Value::Boolean(true))}),
      {"name"});
  rel::Relation relational = *rel::Difference(stringed, popular);

  Predicate p;
  Atom a1;
  a1.lhs = Term::Candidate({family_});
  a1.op = SetOp::kEqual;
  a1.rhs = Term::Constant({E(families_, "stringed")});
  Atom a2;
  a2.lhs = Term::Candidate({popular_});
  a2.op = SetOp::kEqual;
  a2.negated = true;
  a2.rhs = Term::Constant({db_->InternBoolean(true)});
  p.AddAtom(a1, 0);
  p.AddAtom(a2, 1);
  query::Evaluator eval(*db_);
  EXPECT_EQ(AsRelation(eval.EvaluateSubclass(p, instruments_)), relational);
}

TEST_F(RelationalCompletenessTest, JoinViaMapComposition) {
  // Musicians who play a stringed instrument = project(join(plays,
  // sigma_{family=stringed}(family))) — in ISIS a two-step map.
  rel::Relation joined = *rel::NaturalJoin(
      *rel::Rename(**rel_.Find("musicians_plays"),
                   {{"name", "musician"}, {"plays", "name"}}),
      *rel::Select(**rel_.Find("instruments_family"),
                   {rel::Condition::WithConst(
                       1, rel::CompareOp::kEq,
                       rel::Value::String("stringed"))}));
  rel::Relation relational =
      *rel::Rename(*rel::Project(joined, {"musician"}), {{"musician",
                                                          "name"}});
  Atom atom;
  atom.lhs = Term::Candidate({plays_, family_});
  atom.op = SetOp::kWeakMatch;
  atom.rhs = Term::Constant({E(families_, "stringed")});
  EXPECT_EQ(AsRelation(Derived(musicians_, atom)), relational);
}

TEST_F(RelationalCompletenessTest, ProjectionViaDerivedAttribute) {
  // pi_{family}(instruments) = the value set of a derived attribute on a
  // singleton helper... simplest faithful form: the image of the class
  // extent under the family map, which is what a derived attribute with the
  // hand operator computes per owner. Compare the extents directly.
  rel::Relation relational =
      *rel::Project(**rel_.Find("instruments_family"), {"family"});
  query::Evaluator eval(*db_);
  EntitySet image =
      eval.EvalTerm(Term::ClassExtent(instruments_, {family_}),
                    sdm::kNullEntity, sdm::kNullEntity);
  rel::Relation as_rel({"family"});
  for (EntityId e : image) {
    ASSERT_TRUE(as_rel.Insert({rel::EncodeEntity(*db_, e)}).ok());
  }
  EXPECT_EQ(as_rel, relational);
}

TEST_F(RelationalCompletenessTest, DivisionLikeQueryViaSubset) {
  // Groups whose members' instruments cover ALL stringed instruments the
  // quartet-style division query — relationally a division, in ISIS a
  // superset atom over a class-extent map.
  Atom atom;
  atom.lhs = Term::Candidate(
      {*db_->schema().FindAttribute(music_groups_, "members"), plays_});
  atom.op = SetOp::kSuperset;
  // All stringed instruments, as a live class-extent-derived constant.
  ClassId stringed_cls = *db_->CreateSubclass("stringed_insts", instruments_,
                                              Membership::kEnumerated);
  for (EntityId e : db_->Members(instruments_)) {
    if (db_->GetSingle(e, family_) == E(families_, "stringed")) {
      ASSERT_TRUE(db_->AddToClass(e, stringed_cls).ok());
    }
  }
  atom.rhs = Term::ClassExtent(stringed_cls);
  EntitySet covering = Derived(music_groups_, atom);
  // Oracle: brute force over the relational encoding.
  const rel::Relation* members_rel = *rel_.Find("music_groups_members");
  const rel::Relation* plays_rel = *rel_.Find("musicians_plays");
  EntitySet expected;
  for (EntityId g : db_->Members(music_groups_)) {
    std::set<std::string> played;
    for (const rel::Tuple& m : members_rel->tuples()) {
      if (m[0].str() != db_->NameOf(g)) continue;
      for (const rel::Tuple& t : plays_rel->tuples()) {
        if (t[0].str() == m[1].str()) played.insert(t[1].str());
      }
    }
    bool covers = true;
    for (EntityId si : db_->Members(stringed_cls)) {
      if (played.count(db_->NameOf(si)) == 0) covers = false;
    }
    if (covers) expected.insert(g);
  }
  EXPECT_EQ(covering, expected);
}

}  // namespace
}  // namespace isis
