/// \file store_test.cpp
/// \brief Tests for the versioned text serialization: round-trips, id-gap
/// preservation, and rejection of corrupted input.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "datasets/synthetic.h"
#include "query/eval.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

namespace isis::store {
namespace {

using query::Workspace;
using sdm::Membership;
using sdm::Schema;

TEST(StoreTest, EmptyWorkspaceRoundTrips) {
  Workspace ws;
  ws.set_name("empty");
  std::string blob = Save(ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "empty");
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, InstrumentalMusicRoundTripsExactly) {
  auto ws = datasets::BuildInstrumentalMusic();
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Idempotence: saving the load reproduces the bytes.
  EXPECT_EQ(Save(**loaded), blob);
  // Stored queries survive and still evaluate identically.
  const Schema& s = (*loaded)->db().schema();
  ClassId play_strings = *s.FindClass("play_strings");
  EXPECT_EQ((*loaded)->db().Members(play_strings),
            ws->db().Members(play_strings));
  ASSERT_TRUE((*loaded)->ReevaluateAll().ok());
  EXPECT_EQ((*loaded)->db().Members(play_strings),
            ws->db().Members(play_strings));
}

TEST(StoreTest, SyntheticRoundTrips) {
  datasets::SyntheticParams params;
  params.entities_per_class = 25;
  auto ws = datasets::BuildSynthetic(params);
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, IdGapsSurviveRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  // Delete things to punch id gaps, then round-trip: remaining ids (which
  // stored predicates reference) must be preserved exactly.
  sdm::Database& db = ws->db();
  ClassId instruments = *db.schema().FindClass("instruments");
  EntityId tuba = *db.FindEntity(instruments, "tuba");
  ASSERT_TRUE(ws->DeleteEntity(tuba).ok());
  ClassId soloists = *db.schema().FindClass("soloists");
  ASSERT_TRUE(ws->DeleteClass(soloists).ok());
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE((*loaded)->db().schema().HasClass(soloists));
  EXPECT_FALSE((*loaded)->db().HasEntity(tuba));
  ClassId musicians = *db.schema().FindClass("musicians");
  EXPECT_EQ(*(*loaded)->db().FindEntity(musicians, "Edith"),
            *db.FindEntity(musicians, "Edith"));
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, NamesNeedingEscapesRoundTrip) {
  Workspace ws;
  ws.set_name("data|base\\with\nweird name");
  ASSERT_TRUE(ws.db().CreateBaseclass("class with space", "name attr").ok());
  std::string blob = Save(ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "data|base\\with\nweird name");
  EXPECT_TRUE((*loaded)->db().schema().FindClass("class with space").ok());
}

TEST(StoreTest, OptionsRoundTrip) {
  sdm::Database::Options options;
  options.incremental_groupings = false;
  options.schema.allow_multiple_parents = true;
  Workspace ws(options);
  auto loaded = Load(Save(ws));
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->db().options().incremental_groupings);
  EXPECT_TRUE((*loaded)->db().schema().options().allow_multiple_parents);
}

TEST(StoreTest, FileRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  std::string path = ::testing::TempDir() + "/im_store_test.isis";
  ASSERT_TRUE(SaveToFile(*ws, path).ok());
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Save(**loaded), Save(*ws));
  EXPECT_TRUE(LoadFromFile("/nonexistent/x.isis").status().IsIOError());
}

class CorruptInputTest : public ::testing::Test {
 protected:
  void SetUp() override { blob_ = Save(*datasets::BuildInstrumentalMusic()); }
  std::string blob_;
};

TEST_F(CorruptInputTest, EmptyAndHeaderless) {
  EXPECT_TRUE(Load("").status().IsParseError());
  EXPECT_TRUE(Load("BOGUS|1\nend\n").status().IsParseError());
  EXPECT_TRUE(Load("ISIS|999\nend\n").status().IsParseError());
}

TEST_F(CorruptInputTest, TruncationDetected) {
  // Cut the file in half: the missing `end` marker must be noticed.
  std::string half = blob_.substr(0, blob_.size() / 2);
  half = half.substr(0, half.rfind('\n') + 1);
  EXPECT_FALSE(Load(half).ok());
}

TEST_F(CorruptInputTest, UnknownTagRejected) {
  std::string tampered = blob_;
  tampered.insert(tampered.find("end\n"), "mystery|1|2\n");
  EXPECT_TRUE(Load(tampered).status().IsParseError());
}

TEST_F(CorruptInputTest, InconsistentDataRejected) {
  // Splice a membership record that violates the subclass-subset rule:
  // entity 9999 does not exist.
  std::string tampered = blob_;
  size_t pos = tampered.find("subpred|");
  ASSERT_NE(pos, std::string::npos);
  // Find the soloists class id from the live schema to target its record.
  auto ws = datasets::BuildInstrumentalMusic();
  ClassId soloists = *ws->db().schema().FindClass("soloists");
  tampered.insert(pos, "members|" + std::to_string(soloists.value()) +
                           "|9999\n");
  Status st = Load(tampered).status();
  EXPECT_FALSE(st.ok());
}

TEST_F(CorruptInputTest, BadFieldCountsRejected) {
  EXPECT_TRUE(
      Load("ISIS|1\nclass|1\nend\n").status().IsParseError());
  EXPECT_TRUE(
      Load("ISIS|1\nsingle|a|b|c\nend\n").status().IsParseError());
}

TEST(StoreTest, DerivedAttributeDerivationsRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  sdm::Database& db = ws->db();
  ClassId music_groups = *db.schema().FindClass("music_groups");
  ClassId instruments = *db.schema().FindClass("instruments");
  AttributeId members = *db.schema().FindAttribute(music_groups, "members");
  AttributeId plays = *db.schema().FindAttribute(
      *db.schema().FindClass("musicians"), "plays");
  AttributeId all_inst =
      *db.CreateAttribute(music_groups, "all_inst", instruments, true);
  ASSERT_TRUE(ws->DefineAttributeDerivation(
                    all_inst, query::AttributeDerivation::Assign(
                                  query::Term::Self({members, plays})))
                  .ok());
  auto loaded = Load(Save(*ws));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const query::AttributeDerivation* d =
      (*loaded)->GetAttributeDerivation(all_inst);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, query::AttributeDerivation::Kind::kAssignment);
  EXPECT_EQ(d->assignment.path.size(), 2u);
  EXPECT_EQ(Save(**loaded), Save(*ws));
}

}  // namespace
}  // namespace isis::store
