/// \file store_test.cpp
/// \brief Tests for the versioned text serialization: round-trips, id-gap
/// preservation, and rejection of corrupted input.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "datasets/synthetic.h"
#include "query/eval.h"
#include "sdm/consistency.h"
#include "store/crc32.h"
#include "store/serializer.h"

namespace isis::store {
namespace {

using query::Workspace;
using sdm::Membership;
using sdm::Schema;

TEST(StoreTest, EmptyWorkspaceRoundTrips) {
  Workspace ws;
  ws.set_name("empty");
  std::string blob = Save(ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "empty");
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, InstrumentalMusicRoundTripsExactly) {
  auto ws = datasets::BuildInstrumentalMusic();
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Idempotence: saving the load reproduces the bytes.
  EXPECT_EQ(Save(**loaded), blob);
  // Stored queries survive and still evaluate identically.
  const Schema& s = (*loaded)->db().schema();
  ClassId play_strings = *s.FindClass("play_strings");
  EXPECT_EQ((*loaded)->db().Members(play_strings),
            ws->db().Members(play_strings));
  ASSERT_TRUE((*loaded)->ReevaluateAll().ok());
  EXPECT_EQ((*loaded)->db().Members(play_strings),
            ws->db().Members(play_strings));
}

TEST(StoreTest, SyntheticRoundTrips) {
  datasets::SyntheticParams params;
  params.entities_per_class = 25;
  auto ws = datasets::BuildSynthetic(params);
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, IdGapsSurviveRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  // Delete things to punch id gaps, then round-trip: remaining ids (which
  // stored predicates reference) must be preserved exactly.
  sdm::Database& db = ws->db();
  ClassId instruments = *db.schema().FindClass("instruments");
  EntityId tuba = *db.FindEntity(instruments, "tuba");
  ASSERT_TRUE(ws->DeleteEntity(tuba).ok());
  ClassId soloists = *db.schema().FindClass("soloists");
  ASSERT_TRUE(ws->DeleteClass(soloists).ok());
  std::string blob = Save(*ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE((*loaded)->db().schema().HasClass(soloists));
  EXPECT_FALSE((*loaded)->db().HasEntity(tuba));
  ClassId musicians = *db.schema().FindClass("musicians");
  EXPECT_EQ(*(*loaded)->db().FindEntity(musicians, "Edith"),
            *db.FindEntity(musicians, "Edith"));
  EXPECT_EQ(Save(**loaded), blob);
}

TEST(StoreTest, NamesNeedingEscapesRoundTrip) {
  Workspace ws;
  ws.set_name("data|base\\with\nweird name");
  ASSERT_TRUE(ws.db().CreateBaseclass("class with space", "name attr").ok());
  std::string blob = Save(ws);
  auto loaded = Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "data|base\\with\nweird name");
  EXPECT_TRUE((*loaded)->db().schema().FindClass("class with space").ok());
}

TEST(StoreTest, OptionsRoundTrip) {
  sdm::Database::Options options;
  options.incremental_groupings = false;
  options.schema.allow_multiple_parents = true;
  Workspace ws(options);
  auto loaded = Load(Save(ws));
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->db().options().incremental_groupings);
  EXPECT_TRUE((*loaded)->db().schema().options().allow_multiple_parents);
}

TEST(StoreTest, FileRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  std::string path = ::testing::TempDir() + "/im_store_test.isis";
  ASSERT_TRUE(SaveToFile(*ws, path).ok());
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Save(**loaded), Save(*ws));
  EXPECT_TRUE(LoadFromFile("/nonexistent/x.isis").status().IsIOError());
}

/// Strips the v2 sealing: returns the bare record payloads (no header, no
/// per-line CRC suffixes, no trailer).
std::vector<std::string> PayloadLines(const std::string& blob) {
  std::vector<std::string> lines = Split(blob, '\n');
  // Split leaves one empty element after the final newline.
  EXPECT_EQ(lines.back(), "");
  lines.pop_back();
  std::vector<std::string> out;
  for (size_t i = 1; i + 1 < lines.size(); ++i) {
    out.push_back(lines[i].substr(0, lines[i].rfind('|')));
  }
  return out;
}

/// Re-seals edited payload lines into a checksum-valid v2 file, so tests can
/// prove the *semantic* validation fires even when every CRC is intact.
std::string SealV2(const std::vector<std::string>& payloads) {
  std::string out = "ISIS|2\n";
  std::uint32_t body_crc = 0;
  for (const std::string& p : payloads) {
    out += p + "|" + Crc32Hex(Crc32(p)) + "\n";
    body_crc = Crc32("\n", Crc32(p, body_crc));
  }
  std::string trailer =
      "end|" + std::to_string(payloads.size()) + "|" + Crc32Hex(body_crc);
  out += trailer + "|" + Crc32Hex(Crc32(trailer)) + "\n";
  return out;
}

class CorruptInputTest : public ::testing::Test {
 protected:
  void SetUp() override { blob_ = Save(*datasets::BuildInstrumentalMusic()); }
  std::string blob_;
};

TEST_F(CorruptInputTest, UnsealResealIsIdentity) {
  EXPECT_EQ(SealV2(PayloadLines(blob_)), blob_);
}

TEST_F(CorruptInputTest, EmptyAndHeaderless) {
  EXPECT_TRUE(Load("").status().IsParseError());
  EXPECT_TRUE(Load("BOGUS|1\nend\n").status().IsParseError());
  EXPECT_TRUE(Load("ISIS|999\nend\n").status().IsParseError());
}

TEST_F(CorruptInputTest, TruncationDetected) {
  // Cut the file in half at a line boundary: the sealed trailer is gone.
  std::string half = blob_.substr(0, blob_.size() / 2);
  half = half.substr(0, half.rfind('\n') + 1);
  Status st = Load(half).status();
  EXPECT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("trailer"), std::string::npos) << st.ToString();
}

TEST_F(CorruptInputTest, HeaderCutMidLine) {
  // A crash while the very first bytes were written: the header line has
  // no newline yet.
  EXPECT_TRUE(Load("ISI").status().IsParseError());
  EXPECT_TRUE(Load("ISIS|2").status().IsParseError());
}

TEST_F(CorruptInputTest, RecordTruncatedMidLine) {
  // Cut inside a record line: its checksum suffix is incomplete or gone.
  size_t cut = blob_.find('\n', blob_.size() / 3);
  ASSERT_NE(cut, std::string::npos);
  Status st = Load(blob_.substr(0, cut - 3)).status();
  EXPECT_TRUE(st.IsParseError()) << st.ToString();
}

TEST_F(CorruptInputTest, TrailingGarbageRejected) {
  Status st = Load(blob_ + "junk|after|the|seal\n").status();
  EXPECT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("after sealed trailer"), std::string::npos)
      << st.ToString();
}

TEST_F(CorruptInputTest, SingleBitFlipNamesTheLine) {
  std::string tampered = blob_;
  size_t pos = tampered.find("instruments");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] ^= 0x20;  // 'i' -> 'I'
  const auto line =
      1 + std::count(tampered.begin(),
                     tampered.begin() + static_cast<long>(pos), '\n');
  Status st = Load(tampered).status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line " + std::to_string(line)),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos)
      << st.ToString();
}

TEST_F(CorruptInputTest, RecordDeletionDetectedBySealedTrailer) {
  // Remove one whole record line, original trailer kept: every per-line
  // checksum is still valid, so only the trailer's record count and body
  // checksum can notice the splice.
  std::vector<std::string> lines = Split(blob_, '\n');
  ASSERT_GT(lines.size(), 8u);
  lines.erase(lines.begin() + 5);
  std::string tampered;
  for (size_t i = 0; i + 1 < lines.size(); ++i) tampered += lines[i] + "\n";
  Status st = Load(tampered).status();
  ASSERT_TRUE(st.IsParseError()) << st.ToString();
  EXPECT_NE(st.message().find("mismatch"), std::string::npos)
      << st.ToString();
}

TEST_F(CorruptInputTest, Version1WithoutChecksumsStillLoads) {
  // Files written before the sealing existed carry bare records and a bare
  // `end` marker; they must keep loading (and re-save as v2).
  std::string v1 = "ISIS|1\n";
  for (const std::string& p : PayloadLines(blob_)) v1 += p + "\n";
  v1 += "end\n";
  auto loaded = Load(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Save(**loaded), blob_);
}

TEST_F(CorruptInputTest, UnknownTagRejected) {
  // Seal the tampered record properly: the tag check itself must fire.
  std::vector<std::string> payloads = PayloadLines(blob_);
  payloads.push_back("mystery|1|2");
  EXPECT_TRUE(Load(SealV2(payloads)).status().IsParseError());
}

TEST_F(CorruptInputTest, InconsistentDataRejected) {
  // Splice a checksum-valid membership record that violates the
  // subclass-subset rule: entity 9999 does not exist.
  std::vector<std::string> payloads = PayloadLines(blob_);
  auto ws = datasets::BuildInstrumentalMusic();
  ClassId soloists = *ws->db().schema().FindClass("soloists");
  auto it = std::find_if(
      payloads.begin(), payloads.end(),
      [](const std::string& p) { return StartsWith(p, "subpred|"); });
  ASSERT_NE(it, payloads.end());
  payloads.insert(
      it, "members|" + std::to_string(soloists.value()) + "|9999");
  Status st = Load(SealV2(payloads)).status();
  EXPECT_FALSE(st.ok());
}

TEST_F(CorruptInputTest, BadFieldCountsRejected) {
  EXPECT_TRUE(
      Load("ISIS|1\nclass|1\nend\n").status().IsParseError());
  EXPECT_TRUE(
      Load("ISIS|1\nsingle|a|b|c\nend\n").status().IsParseError());
}

TEST(StoreTest, DerivedAttributeDerivationsRoundTrip) {
  auto ws = datasets::BuildInstrumentalMusic();
  sdm::Database& db = ws->db();
  ClassId music_groups = *db.schema().FindClass("music_groups");
  ClassId instruments = *db.schema().FindClass("instruments");
  AttributeId members = *db.schema().FindAttribute(music_groups, "members");
  AttributeId plays = *db.schema().FindAttribute(
      *db.schema().FindClass("musicians"), "plays");
  AttributeId all_inst =
      *db.CreateAttribute(music_groups, "all_inst", instruments, true);
  ASSERT_TRUE(ws->DefineAttributeDerivation(
                    all_inst, query::AttributeDerivation::Assign(
                                  query::Term::Self({members, plays})))
                  .ok());
  auto loaded = Load(Save(*ws));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const query::AttributeDerivation* d =
      (*loaded)->GetAttributeDerivation(all_inst);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, query::AttributeDerivation::Kind::kAssignment);
  EXPECT_EQ(d->assignment.path.size(), 2u);
  EXPECT_EQ(Save(**loaded), Save(*ws));
}

}  // namespace
}  // namespace isis::store
