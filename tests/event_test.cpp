/// \file event_test.cpp
/// \brief Tests for input events, the queue and the session-script parser.

#include <gtest/gtest.h>

#include "input/event.h"

namespace isis::input {
namespace {

TEST(EventQueueTest, Fifo) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(CommandEvent{"follow"});
  q.Push(TextEvent{"quartets"});
  EXPECT_EQ(q.size(), 2u);
  Event first = q.Pop();
  EXPECT_EQ(std::get<CommandEvent>(first).command, "follow");
  Event second = q.Pop();
  EXPECT_EQ(std::get<TextEvent>(second).text, "quartets");
  EXPECT_TRUE(q.empty());
}

TEST(EventToStringTest, AllForms) {
  EXPECT_EQ(EventToString(PickEvent{12, 3}), "pick(12,3)");
  EXPECT_EQ(EventToString(CommandEvent{"undo"}), "cmd[undo]");
  EXPECT_EQ(EventToString(TextEvent{"hi"}), "type[hi]");
  EXPECT_EQ(EventToString(NamedPickEvent{"class:soloists"}),
            "pick[class:soloists]");
}

TEST(ParseScriptTest, AllVerbs) {
  Result<std::vector<Event>> events = ParseScript(
      "# a comment\n"
      "pick class:soloists\n"
      "\n"
      "pickat 10 20\n"
      "cmd view contents\n"
      "type LaBelle Quartet\n");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ(std::get<NamedPickEvent>((*events)[0]).target, "class:soloists");
  EXPECT_EQ(std::get<PickEvent>((*events)[1]).x, 10);
  EXPECT_EQ(std::get<PickEvent>((*events)[1]).y, 20);
  EXPECT_EQ(std::get<CommandEvent>((*events)[2]).command, "view contents");
  EXPECT_EQ(std::get<TextEvent>((*events)[3]).text, "LaBelle Quartet");
}

TEST(ParseScriptTest, WhitespaceTolerant) {
  Result<std::vector<Event>> events =
      ParseScript("   pick   member:flute   \n");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(std::get<NamedPickEvent>((*events)[0]).target, "member:flute");
}

TEST(ParseScriptTest, EmptyTypeAllowed) {
  // `type` with no argument answers a prompt with the empty string.
  Result<std::vector<Event>> events = ParseScript("type\n");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(std::get<TextEvent>((*events)[0]).text, "");
}

TEST(ParseScriptTest, ErrorsNameTheLine) {
  Status st = ParseScript("pick a\nwiggle b\n").status();
  EXPECT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
  EXPECT_TRUE(ParseScript("pick\n").status().IsParseError());
  EXPECT_TRUE(ParseScript("pickat 1\n").status().IsParseError());
  EXPECT_TRUE(ParseScript("pickat x y\n").status().IsParseError());
  EXPECT_TRUE(ParseScript("cmd\n").status().IsParseError());
}

TEST(ParseScriptTest, EmptyScriptYieldsNoEvents) {
  Result<std::vector<Event>> events = ParseScript("# only comments\n\n");
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

}  // namespace
}  // namespace isis::input
