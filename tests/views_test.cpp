/// \file views_test.cpp
/// \brief Tests for the four view renderers: content, the paper's visual
/// conventions (reverse video, set borders, bold selection), hit regions
/// and determinism.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "ui/views.h"

namespace isis::ui {
namespace {

class ViewsTest : public ::testing::Test {
 protected:
  void SetUp() override { ws_ = datasets::BuildInstrumentalMusic(); }

  SchemaSelection SelectClass(const char* name) {
    return SchemaSelection::Class(*ws_->db().schema().FindClass(name));
  }
  Screen Render(const SessionState& st) {
    RenderContext ctx{*ws_, st, "test message"};
    return RenderCurrent(ctx);
  }
  bool HasHit(const Screen& s, const std::string& target) {
    return s.FindTarget(target) != nullptr;
  }

  std::unique_ptr<query::Workspace> ws_;
};

TEST_F(ViewsTest, ForestShowsAllUserTrees) {
  SessionState st;
  st.selection = SelectClass("soloists");
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  for (const char* name :
       {"musicians", "instruments", "music_groups", "families",
        "play_strings", "soloists", "by_instrument", "work_status",
        "by_family", "by_in_group"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // Predefined baseclasses stay implicit in the forest.
  EXPECT_EQ(text.find("INTEGER"), std::string::npos);
  // The hand icon marks the selection.
  EXPECT_NE(text.find("hand"), std::string::npos);
  // The message reaches the text window.
  EXPECT_NE(text.find("test message"), std::string::npos);
}

TEST_F(ViewsTest, ForestBaseclassNamesInReverseVideo) {
  SessionState st;
  Screen screen = Render(st);
  // Find "musicians" and check its style row says reverse.
  std::string text = screen.canvas.ToString();
  std::string styles = screen.canvas.StyleString();
  size_t pos = text.find("musicians");
  ASSERT_NE(pos, std::string::npos);
  // Count the row/column of the match.
  int row = static_cast<int>(std::count(text.begin(),
                                        text.begin() + static_cast<long>(pos),
                                        '\n'));
  size_t line_start = text.rfind('\n', pos);
  int col = static_cast<int>(pos - (line_start + 1));
  EXPECT_EQ(screen.canvas.At(col, row).style & gfx::kReverse, gfx::kReverse);
  (void)styles;
  // Subclass names are NOT reverse video.
  size_t sub = text.find("play_strings");
  int sub_row = static_cast<int>(std::count(
      text.begin(), text.begin() + static_cast<long>(sub), '\n'));
  size_t sub_line = text.rfind('\n', sub);
  int sub_col = static_cast<int>(sub - (sub_line + 1));
  EXPECT_EQ(screen.canvas.At(sub_col, sub_row).style & gfx::kReverse, 0);
}

TEST_F(ViewsTest, ForestHitRegionsCoverSchemaObjects) {
  SessionState st;
  st.selection = SelectClass("musicians");
  Screen screen = Render(st);
  EXPECT_TRUE(HasHit(screen, "class:musicians"));
  EXPECT_TRUE(HasHit(screen, "class:soloists"));
  EXPECT_TRUE(HasHit(screen, "grouping:by_family"));
  EXPECT_TRUE(HasHit(screen, "attr:musicians.plays"));
  EXPECT_TRUE(HasHit(screen, "menu:view contents"));
  EXPECT_TRUE(HasHit(screen, "menu:stop"));
}

TEST_F(ViewsTest, ForestMenuVariesWithSelectionKind) {
  // "The commands on the menu vary according to whether the schema
  // selection is a class, an attribute or a grouping."
  SessionState st;
  st.selection = SelectClass("musicians");
  EXPECT_TRUE(HasHit(Render(st), "menu:create subclass"));
  const sdm::Schema& s = ws_->db().schema();
  st.selection = SchemaSelection::Attribute(
      *s.FindClass("musicians"),
      *s.FindAttribute(*s.FindClass("musicians"), "plays"));
  Screen attr_screen = Render(st);
  EXPECT_TRUE(HasHit(attr_screen, "menu:(re)specify value class"));
  EXPECT_TRUE(HasHit(attr_screen, "menu:create grouping"));
  EXPECT_FALSE(HasHit(attr_screen, "menu:create subclass"));
  st.selection = SchemaSelection::Grouping(*s.FindGrouping("by_family"));
  Screen grp_screen = Render(st);
  EXPECT_TRUE(HasHit(grp_screen, "menu:display predicate"));
  EXPECT_FALSE(HasHit(grp_screen, "menu:create attribute"));
}

TEST_F(ViewsTest, NetworkShowsInheritedAttributesAndArrowKinds) {
  SessionState st;
  st.level = Level::kSemanticNetwork;
  st.selection = SelectClass("play_strings");
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  // Inherited attributes appear: stage_name, plays, union + own in_group.
  EXPECT_NE(text.find("stage_name"), std::string::npos);
  EXPECT_NE(text.find("in_group"), std::string::npos);
  // "a single arrow for singlevalued and a double one for multivalued":
  // plays is multivalued (double shaft '='), union singlevalued ('-').
  EXPECT_NE(text.find("=plays="), std::string::npos);
  EXPECT_NE(text.find("-union-"), std::string::npos);
  // Value classes are pickable (the session's figure 2 interaction).
  EXPECT_TRUE(HasHit(screen, "class:instruments"));
}

TEST_F(ViewsTest, NetworkListsIncomingArcs) {
  SessionState st;
  st.level = Level::kSemanticNetwork;
  st.selection = SelectClass("instruments");
  std::string text = Render(st).canvas.ToString();
  EXPECT_NE(text.find("incoming: musicians.plays"), std::string::npos);
}

TEST_F(ViewsTest, DataViewShowsMembersAndSelectionBold) {
  SessionState st;
  st.level = Level::kDataLevel;
  DataPage page;
  page.cls = *ws_->db().schema().FindClass("instruments");
  page.selected = {*ws_->db().FindEntity(page.cls, "flute")};
  st.pages = {page};
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  EXPECT_NE(text.find("*flute"), std::string::npos);  // selected marker
  EXPECT_NE(text.find(" oboe"), std::string::npos);
  // Inherited attribute section: all attributes incl. naming.
  EXPECT_NE(text.find("family"), std::string::npos);
  EXPECT_TRUE(HasHit(screen, "member:oboe"));
  EXPECT_TRUE(HasHit(screen, "attr:family"));
  EXPECT_TRUE(HasHit(screen, "menu:follow"));
}

TEST_F(ViewsTest, DataViewGroupingPageShowsBlocks) {
  SessionState st;
  st.level = Level::kDataLevel;
  DataPage page;
  page.is_grouping = true;
  page.grouping = *ws_->db().schema().FindGrouping("by_family");
  st.pages = {page};
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  EXPECT_NE(text.find("by_family"), std::string::npos);
  EXPECT_NE(text.find("blocks"), std::string::npos);
  // Block entries show the index entity and the block size.
  EXPECT_NE(text.find("stringed {5}"), std::string::npos);
  EXPECT_TRUE(HasHit(screen, "member:percussion"));
}

TEST_F(ViewsTest, DataViewPansMemberList) {
  SessionState st;
  st.level = Level::kDataLevel;
  DataPage page;
  page.cls = *ws_->db().schema().FindClass("instruments");
  st.pages = {page};
  Screen first = Render(st);
  EXPECT_TRUE(HasHit(first, "member:flute"));
  EXPECT_FALSE(HasHit(first, "member:piano"));  // below the fold (17 members)
  st.pages[0].member_pan = 10;
  Screen panned = Render(st);
  EXPECT_FALSE(HasHit(panned, "member:flute"));
  EXPECT_TRUE(HasHit(panned, "member:piano"));
}

TEST_F(ViewsTest, DataViewStacksPagesWithFollowArrow) {
  SessionState st;
  st.level = Level::kDataLevel;
  const sdm::Schema& s = ws_->db().schema();
  DataPage bottom;
  bottom.cls = *s.FindClass("instruments");
  bottom.followed = *s.FindAttribute(bottom.cls, "family");
  DataPage top;
  top.cls = *s.FindClass("families");
  st.pages = {bottom, top};
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  EXPECT_NE(text.find("==[family]==>"), std::string::npos);
  // Only the top page is interactive.
  EXPECT_TRUE(HasHit(screen, "member:brass"));
  EXPECT_FALSE(HasHit(screen, "member:flute"));
}

TEST_F(ViewsTest, WorksheetRendersWindows) {
  SessionState st;
  st.level = Level::kPredicateWorksheet;
  st.worksheet.target = WorksheetState::Target::kMembership;
  const sdm::Schema& s = ws_->db().schema();
  st.worksheet.target_class = *s.FindClass("play_strings");
  Screen screen = Render(st);
  std::string text = screen.canvas.ToString();
  EXPECT_NE(text.find("[clause 1]"), std::string::npos);
  EXPECT_NE(text.find("[atom list]"), std::string::npos);
  EXPECT_NE(text.find("[atom construction]"), std::string::npos);
  EXPECT_NE(text.find("[class list]"), std::string::npos);
  EXPECT_NE(text.find("defining membership of 'play_strings'"),
            std::string::npos);
  EXPECT_TRUE(HasHit(screen, "atom:A"));
  EXPECT_TRUE(HasHit(screen, "atom:E"));
  EXPECT_TRUE(HasHit(screen, "clause:2"));
  EXPECT_TRUE(HasHit(screen, "class:instruments"));
  EXPECT_TRUE(HasHit(screen, "menu:commit"));
}

TEST_F(ViewsTest, WorksheetShowsOperatorsWhenEditing) {
  SessionState st;
  st.level = Level::kPredicateWorksheet;
  st.worksheet.target = WorksheetState::Target::kMembership;
  st.worksheet.target_class = *ws_->db().schema().FindClass("play_strings");
  st.worksheet.pred.atoms.push_back(query::Atom{});
  st.worksheet.current_atom = 0;
  Screen screen = Render(st);
  EXPECT_TRUE(HasHit(screen, "op:="));
  EXPECT_TRUE(HasHit(screen, "op:~"));
  EXPECT_TRUE(HasHit(screen, "op:]="));
  // The attribute palette of the stack-tip class (musicians).
  EXPECT_TRUE(HasHit(screen, "attr:plays"));
}

TEST_F(ViewsTest, RenderIsDeterministic) {
  SessionState st;
  st.selection = SelectClass("musicians");
  Screen a = Render(st);
  Screen b = Render(st);
  EXPECT_EQ(a.canvas.ToString(), b.canvas.ToString());
  EXPECT_EQ(a.canvas.StyleString(), b.canvas.StyleString());
  EXPECT_EQ(a.hits.size(), b.hits.size());
}

TEST_F(ViewsTest, PanMovesForestContent) {
  SessionState st;
  st.selection = SelectClass("musicians");
  Screen base = Render(st);
  st.pan_x = 40;
  Screen panned = Render(st);
  EXPECT_NE(base.canvas.ToString(), panned.canvas.ToString());
}

}  // namespace
}  // namespace isis::ui
