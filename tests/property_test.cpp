/// \file property_test.cpp
/// \brief Property-based tests over randomized synthetic workspaces and
/// fuzzed sessions: invariants that must hold for every seed.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/instrumental_music.h"
#include "datasets/synthetic.h"
#include "query/eval.h"
#include "sdm/consistency.h"
#include "store/serializer.h"
#include "ui/controller.h"

namespace isis {
namespace {

using datasets::BuildSynthetic;
using datasets::ResolveSynthetic;
using datasets::SyntheticHandles;
using datasets::SyntheticParams;
using sdm::EntitySet;

class SyntheticPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SyntheticParams Params() const {
    SyntheticParams p;
    p.seed = GetParam();
    p.entities_per_class = 60;
    p.baseclasses = 3;
    p.subclass_depth = 2;
    return p;
  }
};

TEST_P(SyntheticPropertyTest, GeneratedWorkspacesAreConsistent) {
  auto ws = BuildSynthetic(Params());
  Status st = sdm::ConsistencyChecker(ws->db()).Check();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_P(SyntheticPropertyTest, IncrementalAndRecomputedGroupingsAgree) {
  SyntheticParams inc = Params();
  SyntheticParams rec = Params();
  rec.incremental_groupings = false;
  auto ws_inc = BuildSynthetic(inc);
  auto ws_rec = BuildSynthetic(rec);
  SyntheticHandles h = ResolveSynthetic(*ws_inc, inc);
  Rng rng(GetParam() * 7 + 1);
  // Apply the same mutation stream to both and compare all blocks.
  for (int step = 0; step < 120; ++step) {
    size_t ci = rng.Below(h.baseclasses.size());
    const EntitySet& members = ws_inc->db().Members(h.baseclasses[ci]);
    if (members.empty()) continue;
    auto it = members.begin();
    std::advance(it, rng.Below(members.size()));
    EntityId e = *it;
    const EntitySet& values =
        ws_inc->db().Members(ws_inc->db().schema()
                                  .GetAttribute(h.single_attrs[ci])
                                  .value_class);
    if (values.empty()) continue;
    auto vi = values.begin();
    std::advance(vi, rng.Below(values.size()));
    ASSERT_TRUE(ws_inc->db().SetSingle(e, h.single_attrs[ci], *vi).ok());
    ASSERT_TRUE(ws_rec->db().SetSingle(e, h.single_attrs[ci], *vi).ok());
  }
  for (GroupingId g : h.groupings) {
    const auto& a = ws_inc->db().GroupingBlocks(g);
    const auto& b = ws_rec->db().GroupingBlocks(g);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].members, b[i].members);
    }
  }
}

TEST_P(SyntheticPropertyTest, StoreRoundTripIsIdempotent) {
  auto ws = BuildSynthetic(Params());
  std::string once = store::Save(*ws);
  auto loaded = store::Load(once);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(store::Save(**loaded), once);
}

TEST_P(SyntheticPropertyTest, DerivedMembersAlwaysSubsetOfParent) {
  auto ws = BuildSynthetic(Params());
  SyntheticHandles h = ResolveSynthetic(*ws, Params());
  // Define a random one-atom predicate over each baseclass's first
  // subclass... the synthetic chains are enumerated; create a derived one.
  sdm::Database& db = ws->db();
  Rng rng(GetParam() * 13 + 5);
  for (size_t i = 0; i < h.baseclasses.size(); ++i) {
    ClassId derived = *db.CreateSubclass(
        "derived_" + std::to_string(i), h.baseclasses[i],
        sdm::Membership::kEnumerated);
    query::Predicate p;
    query::Atom a;
    a.lhs = query::Term::Candidate({h.multi_attrs[i]});
    a.op = rng.Chance(0.5) ? query::SetOp::kWeakMatch
                           : query::SetOp::kSuperset;
    a.negated = rng.Chance(0.3);
    // A random constant set drawn from the attribute's value class.
    const EntitySet& pool =
        db.Members(db.schema().GetAttribute(h.multi_attrs[i]).value_class);
    EntitySet constants;
    for (EntityId e : pool) {
      if (rng.Chance(0.05)) constants.insert(e);
    }
    a.rhs = query::Term::Constant(constants);
    p.AddAtom(a, 0);
    ASSERT_TRUE(ws->DefineSubclassMembership(derived, p).ok());
    for (EntityId e : db.Members(derived)) {
      EXPECT_TRUE(db.IsMember(e, h.baseclasses[i]));
    }
  }
  EXPECT_TRUE(sdm::ConsistencyChecker(db).Check().ok());
}

TEST_P(SyntheticPropertyTest, PredicateEvaluationMatchesBruteForceOracle) {
  auto ws = BuildSynthetic(Params());
  SyntheticHandles h = ResolveSynthetic(*ws, Params());
  sdm::Database& db = ws->db();
  query::Evaluator eval(db);
  Rng rng(GetParam() + 99);
  // Build a random 2-clause predicate and check CNF/DNF semantics against
  // direct per-entity atom evaluation.
  query::Predicate p;
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < 2; ++k) {
      query::Atom a;
      a.lhs = query::Term::Candidate({h.single_attrs[0]});
      a.op = rng.Chance(0.5) ? query::SetOp::kEqual : query::SetOp::kWeakMatch;
      a.negated = rng.Chance(0.5);
      const EntitySet& pool = db.Members(
          db.schema().GetAttribute(h.single_attrs[0]).value_class);
      EntitySet constants;
      for (EntityId e : pool) {
        if (rng.Chance(0.1)) constants.insert(e);
      }
      a.rhs = query::Term::Constant(constants);
      p.AddAtom(a, c);
    }
  }
  p.form = rng.Chance(0.5) ? query::NormalForm::kConjunctive
                           : query::NormalForm::kDisjunctive;
  EntitySet fast = eval.EvaluateSubclass(p, h.baseclasses[0]);
  for (EntityId e : db.Members(h.baseclasses[0])) {
    bool c0 = eval.EvalAtom(p.atoms[0], e, sdm::kNullEntity) ||
              eval.EvalAtom(p.atoms[1], e, sdm::kNullEntity);
    bool c1 = eval.EvalAtom(p.atoms[2], e, sdm::kNullEntity) ||
              eval.EvalAtom(p.atoms[3], e, sdm::kNullEntity);
    bool expected;
    if (p.form == query::NormalForm::kConjunctive) {
      expected = c0 && c1;
    } else {
      bool d0 = eval.EvalAtom(p.atoms[0], e, sdm::kNullEntity) &&
                eval.EvalAtom(p.atoms[1], e, sdm::kNullEntity);
      bool d1 = eval.EvalAtom(p.atoms[2], e, sdm::kNullEntity) &&
                eval.EvalAtom(p.atoms[3], e, sdm::kNullEntity);
      expected = d0 || d1;
    }
    EXPECT_EQ(fast.count(e) > 0, expected) << db.NameOf(e);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u, 1234u));

// --- Session fuzzing: random event streams never crash the controller and
// never leave the database inconsistent. ---

class SessionFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionFuzzTest, RandomEventsKeepTheSystemConsistent) {
  ui::SessionController session(datasets::BuildInstrumentalMusic());
  Rng rng(GetParam());
  static const char* kCommands[] = {
      "view associations", "view contents", "view forest", "pop", "follow",
      "select/reject", "(re)assign att. value", "make subclass",
      "create entity", "delete entity", "create subclass",
      "create attribute", "(re)define membership", "(re)define derivation",
      "display predicate", "(re)name", "delete", "undo", "redo", "edit",
      "place 1", "place 2", "lhs", "rhs map", "rhs constant", "negate",
      "switch and/or", "commit", "abort", "accept constant",
      "create constant", "pan left", "pan right", "members up",
      "members down",
  };
  int executed = 0;
  for (int step = 0; step < 400; ++step) {
    input::Event event;
    switch (rng.Below(4)) {
      case 0:
        event = input::CommandEvent{
            kCommands[rng.Below(std::size(kCommands))]};
        break;
      case 1: {
        // Pick a random point on the screen.
        event = input::PickEvent{
            static_cast<int>(rng.Below(ui::kScreenWidth)),
            static_cast<int>(rng.Below(ui::kScreenHeight))};
        break;
      }
      case 2: {
        static const char* kNames[] = {"a", "n1", "n2", "quartz", "x y",
                                       "4", "YES"};
        event = input::TextEvent{kNames[rng.Below(std::size(kNames))]};
        break;
      }
      default: {
        static const char* kTargets[] = {
            "class:musicians",   "class:instruments", "grouping:by_family",
            "member:flute",      "member:Edith",      "attr:family",
            "attr:plays",        "atom:A",            "clause:1",
            "op:=",              "menu:undo",         "class:soloists",
        };
        event = input::NamedPickEvent{kTargets[rng.Below(std::size(kTargets))]};
        break;
      }
    }
    Status st = session.HandleEvent(event);  // errors are fine; crashes not
    if (st.ok()) ++executed;
    if (session.stopped()) break;
    if (step % 50 == 0) {
      Status consistent =
          sdm::ConsistencyChecker(session.workspace().db()).Check();
      ASSERT_TRUE(consistent.ok())
          << "step " << step << ": " << consistent.ToString();
      (void)session.Render();  // rendering any intermediate state is safe
    }
  }
  EXPECT_GT(executed, 0);
  Status final_check =
      sdm::ConsistencyChecker(session.workspace().db()).Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

}  // namespace
}  // namespace isis
