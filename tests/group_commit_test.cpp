/// \file group_commit_test.cpp
/// \brief The group-commit write pipeline (store/group_commit.h) and the
/// batched WAL append (WalWriter::AppendBatch): grouping actually groups
/// (N records, one write, one sync), the policies sync exactly as
/// advertised, the bounded queue applies backpressure instead of dropping,
/// errors are sticky, and -- the property that makes replies trustworthy --
/// after a crash at ANY injected fault point the set of commits that were
/// acknowledged OK is a subset of the clean prefix recovery reads back.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/file.h"
#include "store/group_commit.h"
#include "store/wal.h"

namespace isis::store {
namespace {

std::string Dir() { return ::testing::TempDir(); }

void CleanSlate(const std::string& name) {
  FileEnv* env = FileEnv::Default();
  (void)env->Remove(Dir() + "/" + name + ".wal");
  (void)env->Remove(Dir() + "/" + name + ".wal.tmp");
}

/// A fresh WAL (one "base" record) at <tmp>/<name>.wal through `env`.
std::unique_ptr<WalWriter> FreshWal(const std::string& name, FileEnv* env) {
  std::vector<WalRecord> base;
  base.push_back({"base", "state0"});
  Result<std::unique_ptr<WalWriter>> w =
      WalWriter::CreateWithRecords(Dir() + "/" + name + ".wal", env, base);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return w.ok() ? std::move(*w) : nullptr;
}

TEST(WalBatchTest, AppendBatchIsOneWriteOneSync) {
  CleanSlate("gc_batch");
  // A fault-free FaultInjectingEnv is the operation counter.
  FaultInjectingEnv env(FaultPlan{}, FileEnv::Default());
  std::unique_ptr<WalWriter> wal = FreshWal("gc_batch", &env);
  ASSERT_NE(wal, nullptr);

  const int before_writes = env.writes();
  const int before_syncs = env.syncs();
  std::vector<WalRecord> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back({"event", "payload" + std::to_string(i)});
  }
  ASSERT_TRUE(wal->AppendBatch(batch).ok());
  EXPECT_EQ(env.writes() - before_writes, 1);
  EXPECT_EQ(env.syncs() - before_syncs, 1);

  Result<WalContents> read =
      ReadWal(Dir() + "/gc_batch.wal", FileEnv::Default());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->truncated_tail);
  ASSERT_EQ(read->records.size(), 6u);  // base + 5.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read->records[static_cast<std::size_t>(i + 1)].type, "event");
    EXPECT_EQ(read->records[static_cast<std::size_t>(i + 1)].payload,
              "payload" + std::to_string(i));
  }
}

TEST(WalBatchTest, EmptyBatchIsFree) {
  CleanSlate("gc_empty");
  FaultInjectingEnv env(FaultPlan{}, FileEnv::Default());
  std::unique_ptr<WalWriter> wal = FreshWal("gc_empty", &env);
  ASSERT_NE(wal, nullptr);
  const int before_writes = env.writes();
  const int before_syncs = env.syncs();
  ASSERT_TRUE(wal->AppendBatch({}).ok());
  EXPECT_EQ(env.writes(), before_writes);
  EXPECT_EQ(env.syncs(), before_syncs);
}

TEST(GroupCommitTest, GroupPolicyDrainsPendingRecordsUnderOneSync) {
  CleanSlate("gc_group");
  std::unique_ptr<WalWriter> wal = FreshWal("gc_group", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  GroupCommitter gc(wal.get(), opts);

  // Enqueue 5 before any Wait: the first waiter becomes the leader and
  // must drain all of them as one group with one fsync.
  std::vector<GroupCommitter::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(gc.Enqueue("event", "e" + std::to_string(i)));
  }
  ASSERT_TRUE(gc.Wait(tickets.back()).ok());
  // Earlier tickets were covered by the same batch: resolved, no new I/O.
  for (const GroupCommitter::Ticket& t : tickets) {
    EXPECT_TRUE(gc.Wait(t).ok());
  }

  GroupCommitter::Counters c = gc.counters();
  EXPECT_EQ(c.records, 5);
  EXPECT_EQ(c.batches, 1);
  EXPECT_EQ(c.syncs, 1);
  EXPECT_EQ(c.max_group, 5);

  Result<WalContents> read =
      ReadWal(Dir() + "/gc_group.wal", FileEnv::Default());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 6u);
  // WAL order equals enqueue order.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read->records[static_cast<std::size_t>(i + 1)].payload,
              "e" + std::to_string(i));
  }
}

TEST(GroupCommitTest, PerCommitPolicySyncsEveryRecord) {
  CleanSlate("gc_percommit");
  std::unique_ptr<WalWriter> wal =
      FreshWal("gc_percommit", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kPerCommit;
  GroupCommitter gc(wal.get(), opts);
  for (int i = 0; i < 3; ++i) {
    gc.Enqueue("event", "e" + std::to_string(i));
  }
  ASSERT_TRUE(gc.Flush().ok());
  GroupCommitter::Counters c = gc.counters();
  EXPECT_EQ(c.records, 3);
  EXPECT_EQ(c.syncs, 3);  // One fsync per record, grouping or not.
}

TEST(GroupCommitTest, NonePolicyNeverSyncs) {
  CleanSlate("gc_none");
  FaultInjectingEnv env(FaultPlan{}, FileEnv::Default());
  std::unique_ptr<WalWriter> wal = FreshWal("gc_none", &env);
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kNone;
  GroupCommitter gc(wal.get(), opts);
  const int before_syncs = env.syncs();
  for (int i = 0; i < 4; ++i) {
    gc.Enqueue("event", "e" + std::to_string(i));
  }
  ASSERT_TRUE(gc.Flush().ok());
  EXPECT_EQ(env.syncs(), before_syncs);
  EXPECT_EQ(gc.counters().syncs, 0);
  EXPECT_EQ(gc.counters().records, 4);
}

TEST(GroupCommitTest, MaxBatchBoundsTheGroup) {
  CleanSlate("gc_maxbatch");
  std::unique_ptr<WalWriter> wal =
      FreshWal("gc_maxbatch", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  opts.max_batch = 2;
  GroupCommitter gc(wal.get(), opts);
  for (int i = 0; i < 5; ++i) {
    gc.Enqueue("event", "e" + std::to_string(i));
  }
  ASSERT_TRUE(gc.Flush().ok());
  GroupCommitter::Counters c = gc.counters();
  EXPECT_EQ(c.records, 5);
  EXPECT_LE(c.max_group, 2);
  EXPECT_GE(c.batches, 3);  // ceil(5 / 2).
}

TEST(GroupCommitTest, FullQueueBlocksEnqueueUntilTheLeaderDrains) {
  CleanSlate("gc_backpressure");
  std::unique_ptr<WalWriter> wal =
      FreshWal("gc_backpressure", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  opts.max_queue = 2;
  GroupCommitter gc(wal.get(), opts);

  GroupCommitter::Ticket t0 = gc.Enqueue("event", "a");
  gc.Enqueue("event", "b");  // Queue now at max_queue.
  // A third enqueue must block -- backpressure, not a drop -- until a
  // leader frees space. The main thread provides that leader via Wait,
  // but only after the enqueuer is provably parked (queue_waits bumps
  // before the wait), so the blocking path is exercised every run.
  std::thread blocked([&gc] {
    EXPECT_TRUE(gc.Commit("event", "c").ok());
  });
  while (gc.counters().queue_waits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(gc.Wait(t0).ok());
  blocked.join();

  GroupCommitter::Counters c = gc.counters();
  EXPECT_EQ(c.records, 3);  // Nothing was dropped.
  EXPECT_GE(c.queue_waits, 1);
  Result<WalContents> read =
      ReadWal(Dir() + "/gc_backpressure.wal", FileEnv::Default());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 4u);  // base + a, b, c.
}

TEST(GroupCommitTest, FirstFailureIsStickyAndLaterCommitsFailFast) {
  CleanSlate("gc_sticky");
  std::unique_ptr<WalWriter> created =
      FreshWal("gc_sticky", FileEnv::Default());
  ASSERT_NE(created, nullptr);
  created.reset();
  // Reopen the log through an env whose first sync fails.
  FaultPlan plan;
  plan.fail_sync = 0;
  FaultInjectingEnv failing(plan, FileEnv::Default());
  Result<std::unique_ptr<WalWriter>> w =
      WalWriter::OpenForAppend(Dir() + "/gc_sticky.wal", &failing);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  GroupCommitter gc(w->get(), opts);
  Status first = gc.Commit("event", "x");
  EXPECT_FALSE(first.ok());
  // The WAL is now suspect: later commits fail fast without touching it,
  // reporting the original (sticky) failure.
  Status st = gc.Commit("event", "y");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), first.code());
  // And the env saw no I/O after the crash (it plays dead anyway, but the
  // committer must not even try: the file may be torn mid-frame).
  EXPECT_TRUE(failing.crashed());
}

/// The observer feeds the server's stats; it must see every batch with the
/// right record count and sync flag.
TEST(GroupCommitTest, BatchObserverSeesEveryGroup) {
  CleanSlate("gc_observer");
  std::unique_ptr<WalWriter> wal =
      FreshWal("gc_observer", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  int observed_batches = 0;
  int observed_records = 0;
  int observed_synced = 0;
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  opts.batch_observer = [&](int records, std::int64_t sync_us, bool synced) {
    (void)sync_us;
    ++observed_batches;
    observed_records += records;
    if (synced) ++observed_synced;
  };
  GroupCommitter gc(wal.get(), opts);
  for (int i = 0; i < 4; ++i) {
    gc.Enqueue("event", "e" + std::to_string(i));
  }
  ASSERT_TRUE(gc.Flush().ok());
  EXPECT_EQ(observed_records, 4);
  EXPECT_EQ(observed_batches, observed_synced);
  EXPECT_EQ(static_cast<std::int64_t>(observed_batches),
            gc.counters().batches);
}

TEST(GroupCommitTest, ManyConcurrentCommittersAllLandInOrderPerThread) {
  CleanSlate("gc_mt");
  std::unique_ptr<WalWriter> wal = FreshWal("gc_mt", FileEnv::Default());
  ASSERT_NE(wal, nullptr);
  GroupCommitter::Options opts;
  opts.policy = WalSyncPolicy::kGroup;
  GroupCommitter gc(wal.get(), opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gc, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Status st = gc.Commit(
            "event", std::to_string(t) + ":" + std::to_string(i));
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  GroupCommitter::Counters c = gc.counters();
  EXPECT_EQ(c.records, kThreads * kPerThread);
  // The point of the exercise: fewer fsyncs than records means groups
  // actually formed. (>= 1 group of >= 1 is all that is guaranteed on a
  // fully serialized machine, but every record must still be on disk.)
  EXPECT_LE(c.syncs, c.records);

  Result<WalContents> read = ReadWal(Dir() + "/gc_mt.wal",
                                     FileEnv::Default());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(),
            static_cast<std::size_t>(kThreads * kPerThread) + 1);
  // Per-thread program order survives interleaving: thread t's records
  // appear in i-order (the global interleaving is free).
  std::vector<int> last_seen(kThreads, -1);
  for (std::size_t r = 1; r < read->records.size(); ++r) {
    const std::string& p = read->records[r].payload;
    const std::size_t colon = p.find(':');
    ASSERT_NE(colon, std::string::npos);
    const int t = std::stoi(p.substr(0, colon));
    const int i = std::stoi(p.substr(colon + 1));
    EXPECT_EQ(i, last_seen[static_cast<std::size_t>(t)] + 1)
        << "thread " << t << " commits reordered";
    last_seen[static_cast<std::size_t>(t)] = i;
  }
}

// --- The durability property: acked commits survive every crash point. ---

struct CrashRun {
  int acked = 0;       ///< Commits that returned OK, a prefix count.
  bool crashed = false;
};

/// Runs the fixed 6-commit script against a WAL on `env`, committing
/// through a GroupCommitter with `policy`. `enqueue_first` stresses the
/// multi-record-batch geometry: everything is enqueued before the first
/// Wait, so one leader drain covers all six. Returns how many commits were
/// acknowledged OK. Commits are acked strictly in order, so `acked` is a
/// prefix count.
CrashRun RunCommitScript(const std::string& path, FileEnv* env,
                         WalSyncPolicy policy, bool enqueue_first) {
  CrashRun out;
  std::vector<WalRecord> base;
  base.push_back({"base", "state0"});
  Result<std::unique_ptr<WalWriter>> w =
      WalWriter::CreateWithRecords(path, env, base);
  if (!w.ok()) {
    out.crashed = true;
    return out;
  }
  GroupCommitter::Options opts;
  opts.policy = policy;
  GroupCommitter gc(w->get(), opts);
  constexpr int kCommits = 6;
  if (enqueue_first) {
    std::vector<GroupCommitter::Ticket> tickets;
    for (int i = 0; i < kCommits; ++i) {
      tickets.push_back(gc.Enqueue("event", "e" + std::to_string(i)));
    }
    for (int i = 0; i < kCommits; ++i) {
      if (!gc.Wait(tickets[static_cast<std::size_t>(i)]).ok()) {
        out.crashed = true;
        return out;
      }
      out.acked = i + 1;
    }
  } else {
    for (int i = 0; i < kCommits; ++i) {
      if (!gc.Commit("event", "e" + std::to_string(i)).ok()) {
        out.crashed = true;
        return out;
      }
      out.acked = i + 1;
    }
  }
  return out;
}

TEST(GroupCommitCrashTest, AckedCommitsAreAPrefixOfRecoveryAtEveryFault) {
  const WalSyncPolicy policies[] = {WalSyncPolicy::kPerCommit,
                                    WalSyncPolicy::kGroup};
  const long prefixes[] = {0, 7, 1 << 20};
  for (WalSyncPolicy policy : policies) {
    for (bool enqueue_first : {false, true}) {
      const std::string name =
          std::string("gc_crash_") + WalSyncPolicyName(policy) +
          (enqueue_first ? "_batch" : "_seq");
      const std::string path = Dir() + "/" + name + ".wal";

      // Planning run: count the fault points a clean run crosses.
      CleanSlate(name);
      FaultInjectingEnv plan_env(FaultPlan{}, FileEnv::Default());
      CrashRun clean =
          RunCommitScript(path, &plan_env, policy, enqueue_first);
      ASSERT_FALSE(clean.crashed);
      ASSERT_EQ(clean.acked, 6);
      const int writes = plan_env.writes();
      const int syncs = plan_env.syncs();

      // Crash at every write and every sync, with three torn-write shapes.
      for (int kind = 0; kind < 2; ++kind) {
        const int points = kind == 0 ? writes : syncs;
        for (int at = 0; at < points; ++at) {
          for (long prefix : prefixes) {
            SCOPED_TRACE(name + (kind == 0 ? " write " : " sync ") +
                         std::to_string(at) + " prefix " +
                         std::to_string(prefix));
            CleanSlate(name);
            FaultPlan plan;
            if (kind == 0) {
              plan.fail_write = at;
            } else {
              plan.fail_sync = at;
            }
            plan.persist_prefix = prefix;
            FaultInjectingEnv env(plan, FileEnv::Default());
            CrashRun run =
                RunCommitScript(path, &env, policy, enqueue_first);
            EXPECT_TRUE(run.crashed);

            // Recovery reads whatever the "disk" holds. A torn tail is
            // legal (dropped); a mid-log parse error is not.
            if (!FileEnv::Default()->Exists(path)) {
              // Crashed before the base checkpoint was renamed into
              // place: nothing was acked, nothing to recover.
              EXPECT_EQ(run.acked, 0);
              continue;
            }
            Result<WalContents> read = ReadWal(path, FileEnv::Default());
            ASSERT_TRUE(read.ok()) << read.status().ToString();
            ASSERT_GE(read->records.size(), 1u);
            EXPECT_EQ(read->records[0].type, "base");
            // The recovered records must be a clean prefix of the script
            // (e0, e1, ...), and every acked commit must be inside it.
            const int recovered =
                static_cast<int>(read->records.size()) - 1;
            for (int i = 0; i < recovered; ++i) {
              EXPECT_EQ(read->records[static_cast<std::size_t>(i + 1)]
                            .payload,
                        "e" + std::to_string(i));
            }
            EXPECT_LE(run.acked, recovered)
                << "an acknowledged commit vanished in the crash";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace isis::store
