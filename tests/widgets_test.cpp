/// \file widgets_test.cpp
/// \brief Tests for the view widgets: menus, text windows and pannable
/// windows.

#include <gtest/gtest.h>

#include "gfx/widgets.h"

namespace isis::gfx {
namespace {

TEST(MenuTest, RendersItemsAndReturnsHitRows) {
  Menu menu("commands");
  menu.Add("view contents", "F2");
  menu.Add("delete");
  menu.Add("ghost", "", /*enabled=*/false);
  Canvas c(30, 8);
  std::vector<Rect> rows = menu.Render(&c, Rect{0, 0, 30, 8});
  ASSERT_EQ(rows.size(), 3u);
  std::string s = c.ToString();
  EXPECT_NE(s.find("view contents"), std::string::npos);
  EXPECT_NE(s.find("F2"), std::string::npos);
  EXPECT_NE(s.find("commands"), std::string::npos);
  // Hit rows are inside the menu rect, one per item, top to bottom.
  EXPECT_EQ(rows[0].y + 1, rows[1].y);
  EXPECT_TRUE((Rect{0, 0, 30, 8}).Contains(rows[0].x, rows[0].y));
}

TEST(MenuTest, LongCommandsClippedInsideBorder) {
  Menu menu("m");
  menu.Add("an extremely long command name that overflows");
  Canvas c(20, 4);
  menu.Render(&c, Rect{0, 0, 20, 4});
  // The right border survives.
  EXPECT_EQ(c.At(19, 1).ch, '|');
}

TEST(TextWindowTest, SetAppendAndScroll) {
  TextWindow w;
  w.Set("first");
  w.Append("second");
  w.Append("third\nfourth");  // embedded newline splits
  EXPECT_EQ(w.lines().size(), 4u);
  Canvas c(20, 4);  // 2 content rows
  w.Render(&c, Rect{0, 0, 20, 4});
  std::string s = c.ToString();
  // Only the last lines that fit are shown.
  EXPECT_EQ(s.find("first"), std::string::npos);
  EXPECT_NE(s.find("third"), std::string::npos);
  EXPECT_NE(s.find("fourth"), std::string::npos);
  w.Clear();
  EXPECT_TRUE(w.lines().empty());
}

class WindowTest : public ::testing::Test {
 protected:
  WindowTest() : canvas_(20, 10), win_(&canvas_, Rect{5, 2, 10, 5}) {}
  Canvas canvas_;
  Window win_;
};

TEST_F(WindowTest, LogicalDrawingMapsThroughRect) {
  win_.Put(0, 0, 'a');
  EXPECT_EQ(canvas_.At(5, 2).ch, 'a');
  win_.Text(1, 1, "hi");
  EXPECT_EQ(canvas_.At(6, 3).ch, 'h');
}

TEST_F(WindowTest, ClipsOutsideTheRect) {
  win_.Put(-1, 0, 'x');
  win_.Put(10, 0, 'x');
  win_.Put(0, 5, 'x');
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 20; ++x) {
      EXPECT_NE(canvas_.At(x, y).ch, 'x');
    }
  }
}

TEST_F(WindowTest, PanShiftsTheViewport) {
  win_.SetPan(3, 1);
  win_.Put(3, 1, 'p');  // logical (3,1) now at the window origin
  EXPECT_EQ(canvas_.At(5, 2).ch, 'p');
  win_.Pan(-3, -1);
  win_.Put(0, 0, 'q');
  EXPECT_EQ(canvas_.At(5, 2).ch, 'q');
}

TEST_F(WindowTest, ToScreenClips) {
  Rect full = win_.ToScreen(Rect{0, 0, 4, 2});
  EXPECT_EQ(full.x, 5);
  EXPECT_EQ(full.y, 2);
  EXPECT_EQ(full.w, 4);
  Rect partial = win_.ToScreen(Rect{8, 3, 5, 5});
  EXPECT_EQ(partial.w, 2);  // clipped at the right edge
  EXPECT_EQ(partial.h, 2);  // clipped at the bottom
  Rect gone = win_.ToScreen(Rect{-10, -10, 2, 2});
  EXPECT_EQ(gone.w, 0);
}

TEST_F(WindowTest, ToLogicalInvertsMapping) {
  win_.SetPan(4, 2);
  int lx, ly;
  win_.ToLogical(5, 2, &lx, &ly);
  EXPECT_EQ(lx, 4);
  EXPECT_EQ(ly, 2);
}

TEST_F(WindowTest, EnsureVisiblePansMinimally) {
  win_.EnsureVisible(Rect{20, 0, 4, 2});
  EXPECT_EQ(win_.pan_x(), 14);  // 24 - width 10
  EXPECT_EQ(win_.pan_y(), 0);
  win_.EnsureVisible(Rect{0, 0, 2, 2});
  EXPECT_EQ(win_.pan_x(), 0);
  // Already visible: no movement.
  win_.EnsureVisible(Rect{1, 1, 2, 2});
  EXPECT_EQ(win_.pan_x(), 0);
  EXPECT_EQ(win_.pan_y(), 0);
}

TEST_F(WindowTest, BoxAndStyle) {
  win_.Box(Rect{0, 0, 4, 3});
  EXPECT_EQ(canvas_.At(5, 2).ch, '+');
  EXPECT_EQ(canvas_.At(8, 4).ch, '+');
  win_.AddStyle(Rect{0, 0, 2, 1}, kBold);
  EXPECT_EQ(canvas_.At(5, 2).style, kBold);
}

}  // namespace
}  // namespace isis::gfx
