/// \file chaos_test.cpp
/// \brief The network chaos harness: concurrent retrying clients over
/// fault-injecting transports must converge to the fault-free oracle state.
///
/// Each schedule wires 4 client threads through
/// RetryingClient -> FaultInjectingTransport -> LoopbackTransport and lets
/// a seeded fault mix drop, corrupt, delay and disconnect at will. Every
/// logical operation must still succeed (the retry budget is generous, the
/// fault probabilities are not certainties), no wait may hang (every wait
/// in the stack is deadline-bounded), and the surviving database state must
/// be *byte-identical* to a fault-free single-threaded run of the same
/// writes. Sessions write disjoint entities with deterministic values, so
/// the final state is independent of interleaving and the comparison is
/// exact, not statistical.
///
/// Runs under ThreadSanitizer in CI (label `chaos`) with ISIS_CHAOS_SEEDS
/// trimmed; the full default is 8 seeded schedules.
///
/// The durable variant replays the same discipline against a server with
/// `--wal_sync=group`: chaos traffic over a real on-disk WAL, then a crash
/// (no Shutdown) and recovery must land byte-identical to the oracle too --
/// group commit must not reorder or lose acknowledged writes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datasets/scaled_music.h"
#include "server/faults.h"
#include "server/loopback.h"
#include "server/retry.h"
#include "server/session.h"
#include "store/file.h"

namespace isis::server {
namespace {

constexpr int kSessions = 4;
constexpr int kWritesPerSession = 24;
constexpr int kMusicians = 32;    // BuildScaledMusic(2).
constexpr int kInstruments = 4;

int ScheduleCount() {
  if (const char* env = std::getenv("ISIS_CHAOS_SEEDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

/// The deterministic write list for one session: session `s` owns the
/// musicians with index % kSessions == s, so sessions never contend on an
/// entity and last-write-wins makes the final state a pure function of
/// each session's program order.
struct Write {
  std::string entity;
  std::string values;
};

std::vector<Write> SessionWrites(int session) {
  std::vector<Write> out;
  Rng rng(1000 + static_cast<std::uint64_t>(session));
  for (int i = 0; i < kWritesPerSession; ++i) {
    int m = session + kSessions * static_cast<int>(rng.Below(
                                      kMusicians / kSessions));
    std::string values = "inst" + std::to_string(rng.Below(kInstruments));
    if (rng.Chance(0.4)) {
      values += ",inst" + std::to_string(rng.Below(kInstruments));
    }
    out.push_back({"musician" + std::to_string(m), values});
  }
  return out;
}

FaultSchedule MakeSchedule(std::uint64_t seed) {
  // Every knob derived from the seed: a failing schedule is replayable
  // from its number alone.
  Rng rng(seed * 7919 + 1);
  FaultSchedule f;
  f.seed = seed;
  f.delay_prob = 0.04 + rng.Unit() * 0.04;
  f.max_delay_us = 300;
  f.drop_request_prob = 0.02 + rng.Unit() * 0.03;
  f.corrupt_prob = 0.02 + rng.Unit() * 0.03;
  f.partial_write_prob = 0.02 + rng.Unit() * 0.03;
  f.drop_response_prob = 0.04 + rng.Unit() * 0.06;
  f.disconnect_prob = 0.02 + rng.Unit() * 0.03;
  f.connect_fail_prob = 0.05 + rng.Unit() * 0.10;
  return f;
}

RetryOptions ChaosRetryOptions(std::uint64_t seed, int session) {
  RetryOptions o;
  // Generous budget: the fault probabilities make long streaks of failed
  // attempts rare but not impossible, and one exhausted op fails the test.
  o.max_attempts = 50;
  // Short per-attempt deadline so injected request drops cost ~nothing but
  // real work still finishes under TSan.
  o.timeout_ms = 2000;
  o.base_backoff_ms = 1;
  o.max_backoff_ms = 8;
  o.jitter_seed = seed * 131 + static_cast<std::uint64_t>(session);
  return o;
}

/// Queries whose payloads the chaos run must reproduce byte-identically.
std::vector<std::string> OracleQueries() {
  std::vector<std::string> preds;
  for (int i = 0; i < kInstruments; ++i) {
    preds.push_back("e.plays ]= {inst" + std::to_string(i) + "}");
  }
  return preds;
}

struct SessionTally {
  std::int64_t retries = 0;
  std::int64_t transport_errors = 0;
  std::int64_t resumed = 0;
  std::int64_t faults = 0;
  bool all_ok = true;
  std::string first_error;
};

TEST(ChaosTest, SeededSchedulesConvergeToTheFaultFreeOracle) {
  // The oracle: the same writes, one thread, no faults.
  std::unique_ptr<Server> oracle_srv;
  std::vector<std::string> oracle_payloads;
  {
    ServerOptions opts;
    opts.threads = 1;
    Result<std::unique_ptr<Server>> opened =
        Server::Open(datasets::BuildScaledMusic(2), opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    oracle_srv = std::move(opened).ValueOrDie();
    LoopbackClient client(oracle_srv.get());
    ASSERT_TRUE(client.Connect("oracle").ok());
    for (int s = 0; s < kSessions; ++s) {
      for (const Write& w : SessionWrites(s)) {
        ASSERT_TRUE(
            client.Assign("musicians", w.entity, "plays", w.values).ok());
      }
    }
    for (const std::string& pred : OracleQueries()) {
      Result<Frame> resp = client.Call(
          MsgType::kQuery, JoinFields({"musicians", pred}));
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp->type, MsgType::kQueryResult);
      oracle_payloads.push_back(resp->payload);
    }
    oracle_srv->Shutdown();
  }

  const int schedules = ScheduleCount();
  std::int64_t total_retries = 0;
  std::int64_t total_faults = 0;
  std::int64_t total_dedup_hits = 0;
  std::int64_t total_resumes = 0;

  for (int round = 0; round < schedules; ++round) {
    const std::uint64_t seed = static_cast<std::uint64_t>(round + 1);
    const FaultSchedule schedule = MakeSchedule(seed);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));

    ServerOptions opts;
    opts.threads = 4;
    opts.queue_capacity = 16;
    Result<std::unique_ptr<Server>> opened =
        Server::Open(datasets::BuildScaledMusic(2), opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

    std::vector<SessionTally> tallies(kSessions);
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        SessionTally& tally = tallies[s];
        auto record = [&tally](const Status& st) {
          if (!st.ok() && tally.all_ok) {
            tally.all_ok = false;
            tally.first_error = st.ToString();
          }
        };
        FaultSchedule mine = schedule;
        mine.seed = seed * 977 + static_cast<std::uint64_t>(s);
        auto faulty = std::make_unique<FaultInjectingTransport>(
            std::make_unique<LoopbackTransport>(
                srv.get(), "chaos" + std::to_string(s)),
            mine);
        const FaultInjectingTransport* faults = faulty.get();
        RetryingClient client(std::move(faulty),
                              ChaosRetryOptions(seed, s));
        record(client.Connect());
        // Writes interleaved with reads: reads both add shared-lock
        // traffic and are the always-safe resend case.
        for (const Write& w : SessionWrites(s)) {
          record(client.Assign("musicians", w.entity, "plays", w.values));
          Result<std::vector<std::string>> q = client.Query(
              "musicians", "e.plays ]= {" + w.values.substr(
                               0, w.values.find(',')) + "}");
          record(q.status());
        }
        tally.retries = client.counters().retries;
        tally.transport_errors = client.counters().transport_errors;
        tally.resumed = client.counters().resumed;
        tally.faults = faults->counts().faults();
      });
    }
    for (std::thread& t : threads) t.join();

    for (int s = 0; s < kSessions; ++s) {
      EXPECT_TRUE(tallies[s].all_ok)
          << "session " << s << ": " << tallies[s].first_error;
      total_retries += tallies[s].retries;
      total_faults += tallies[s].faults;
      total_resumes += tallies[s].resumed;
    }

    // The survivors' state must match the oracle byte for byte.
    LoopbackClient verifier(srv.get());
    ASSERT_TRUE(verifier.Connect("verifier").ok());
    const std::vector<std::string> preds = OracleQueries();
    for (std::size_t i = 0; i < preds.size(); ++i) {
      Result<Frame> resp = verifier.Call(
          MsgType::kQuery, JoinFields({"musicians", preds[i]}));
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp->type, MsgType::kQueryResult);
      EXPECT_EQ(resp->payload, oracle_payloads[i])
          << "diverged on: " << preds[i];
    }
    total_dedup_hits += srv->stats().Snapshot().dedup_hits;
    srv->Shutdown();
  }

  // Across the whole run the harness must actually have bitten: faults
  // fired, retries happened, and at least one lost write response was
  // served from the dedup window (the correctness-critical path).
  EXPECT_GT(total_faults, 0) << "the fault injector never fired";
  EXPECT_GT(total_retries, 0) << "no attempt was ever retried";
  EXPECT_GT(total_resumes, 0) << "no reconnect ever resumed a session";
  EXPECT_GT(total_dedup_hits, 0)
      << "no resent write was deduped -- the write-safety path went untested";
}

/// Removes every file a durable server named `name` can leave behind, so a
/// round never recovers a previous round's WAL.
void WipeDurable(const std::string& name) {
  store::FileEnv* env = store::FileEnv::Default();
  const std::string dir = ::testing::TempDir();
  (void)env->Remove(dir + "/" + name + ".server.wal");
  (void)env->Remove(dir + "/" + name + ".server.wal.tmp");
  (void)env->Remove(dir + "/" + name + ".isis");
  (void)env->Remove(dir + "/" + name + ".isis.tmp");
}

TEST(ChaosTest, DurableGroupCommitConvergesAndSurvivesACrash) {
  // Fewer rounds than the in-memory suite: every round pays real fsyncs.
  const int schedules = std::max(1, ScheduleCount() / 4);

  // The oracle: same writes, one thread, no faults, no disk.
  std::vector<std::string> oracle_payloads;
  {
    ServerOptions opts;
    opts.threads = 1;
    Result<std::unique_ptr<Server>> opened =
        Server::Open(datasets::BuildScaledMusic(2), opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Server> oracle_srv = std::move(opened).ValueOrDie();
    LoopbackClient client(oracle_srv.get());
    ASSERT_TRUE(client.Connect("oracle").ok());
    for (int s = 0; s < kSessions; ++s) {
      for (const Write& w : SessionWrites(s)) {
        ASSERT_TRUE(
            client.Assign("musicians", w.entity, "plays", w.values).ok());
      }
    }
    for (const std::string& pred : OracleQueries()) {
      Result<Frame> resp = client.Call(
          MsgType::kQuery, JoinFields({"musicians", pred}));
      ASSERT_TRUE(resp.ok());
      oracle_payloads.push_back(resp->payload);
    }
    oracle_srv->Shutdown();
  }

  for (int round = 0; round < schedules; ++round) {
    const std::uint64_t seed = static_cast<std::uint64_t>(round + 1);
    const FaultSchedule schedule = MakeSchedule(seed);
    const std::string db_name = "chaos_dur" + std::to_string(round);
    SCOPED_TRACE("durable chaos seed " + std::to_string(seed));
    WipeDurable(db_name);

    ServerOptions opts;
    opts.threads = 4;
    opts.queue_capacity = 16;
    opts.durable_dir = ::testing::TempDir();
    opts.wal_sync = store::WalSyncPolicy::kGroup;
    auto fresh_ws = [&db_name] {
      auto ws = datasets::BuildScaledMusic(2);
      ws->set_name(db_name);
      return ws;
    };
    Result<std::unique_ptr<Server>> opened = Server::Open(fresh_ws(), opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

    std::vector<SessionTally> tallies(kSessions);
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        SessionTally& tally = tallies[s];
        auto record = [&tally](const Status& st) {
          if (!st.ok() && tally.all_ok) {
            tally.all_ok = false;
            tally.first_error = st.ToString();
          }
        };
        FaultSchedule mine = schedule;
        mine.seed = seed * 977 + static_cast<std::uint64_t>(s);
        auto faulty = std::make_unique<FaultInjectingTransport>(
            std::make_unique<LoopbackTransport>(
                srv.get(), "chaos" + std::to_string(s)),
            mine);
        RetryingClient client(std::move(faulty),
                              ChaosRetryOptions(seed, s));
        record(client.Connect());
        for (const Write& w : SessionWrites(s)) {
          record(client.Assign("musicians", w.entity, "plays", w.values));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (int s = 0; s < kSessions; ++s) {
      EXPECT_TRUE(tallies[s].all_ok)
          << "session " << s << ": " << tallies[s].first_error;
    }

    // Group commit did its job: every logged record is on disk, and the
    // sync count never exceeds the record count.
    StatsSnapshot snap = srv->stats().Snapshot();
    EXPECT_GT(snap.wal_records, 0);
    EXPECT_LE(snap.wal_syncs, snap.wal_records);

    // The live survivors must match the oracle byte for byte.
    const std::vector<std::string> preds = OracleQueries();
    {
      LoopbackClient verifier(srv.get());
      ASSERT_TRUE(verifier.Connect("verifier").ok());
      for (std::size_t i = 0; i < preds.size(); ++i) {
        Result<Frame> resp = verifier.Call(
            MsgType::kQuery, JoinFields({"musicians", preds[i]}));
        ASSERT_TRUE(resp.ok());
        EXPECT_EQ(resp->payload, oracle_payloads[i])
            << "diverged live on: " << preds[i];
      }
    }

    // Crash: destroy without Shutdown. Recovery must replay the WAL to a
    // state that still matches the oracle -- an acked-but-lost or
    // reordered group-committed write would diverge here.
    srv.reset();
    Result<std::unique_ptr<Server>> reopened = Server::Open(fresh_ws(), opts);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<Server> recovered = std::move(reopened).ValueOrDie();
    {
      LoopbackClient verifier(recovered.get());
      ASSERT_TRUE(verifier.Connect("verifier").ok());
      for (std::size_t i = 0; i < preds.size(); ++i) {
        Result<Frame> resp = verifier.Call(
            MsgType::kQuery, JoinFields({"musicians", preds[i]}));
        ASSERT_TRUE(resp.ok());
        EXPECT_EQ(resp->payload, oracle_payloads[i])
            << "diverged after recovery on: " << preds[i];
      }
    }
    recovered->Shutdown();
    WipeDurable(db_name);
  }
}

}  // namespace
}  // namespace isis::server
