/// \file live_engine_test.cpp
/// \brief Tests for the live-view engine: the delta-maintained state must be
/// indistinguishable from a fresh ReevaluateAll after any mutation stream,
/// cascades must propagate without manual recomputation, and cyclic
/// derivations must surface as a recorded Consistency error.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/instrumental_music.h"
#include "live/engine.h"
#include "query/workspace.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

namespace isis {
namespace {

using query::Atom;
using query::AttributeDerivation;
using query::Predicate;
using query::SetOp;
using query::Term;
using query::Workspace;
using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

/// Handles into one Instrumental_Music workspace.
struct Music {
  sdm::Database* db;
  ClassId musicians, instruments, music_groups, families, play_strings;
  ClassId string_groups;  ///< Defined by DefineExtraViews.
  AttributeId plays, members, size, family;
  AttributeId group_instruments;  ///< Defined by DefineExtraViews.
};

Music Resolve(Workspace* ws) {
  Music m;
  m.db = &ws->db();
  const Schema& s = m.db->schema();
  m.musicians = *s.FindClass("musicians");
  m.instruments = *s.FindClass("instruments");
  m.music_groups = *s.FindClass("music_groups");
  m.families = *s.FindClass("families");
  m.play_strings = *s.FindClass("play_strings");
  m.plays = *s.FindAttribute(m.musicians, "plays");
  m.members = *s.FindAttribute(m.music_groups, "members");
  m.size = *s.FindAttribute(m.music_groups, "size");
  m.family = *s.FindAttribute(m.instruments, "family");
  return m;
}

/// Adds a view-feeds-view subclass, a map-valued derived attribute and a
/// constraint on top of the dataset's own derived play_strings.
void DefineExtraViews(Workspace* ws, Music* m) {
  sdm::Database& db = ws->db();
  // string_groups: groups whose members all play strings — feeds on the
  // derived play_strings, so its maintenance needs the cascade.
  m->string_groups = *db.CreateSubclass("string_groups", m->music_groups,
                                        Membership::kEnumerated);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({m->members});
  a.op = SetOp::kSubset;
  a.rhs = Term::ClassExtent(m->play_strings);
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws->DefineSubclassMembership(m->string_groups, p).ok());
  // group_instruments: two-step self map members.plays.
  m->group_instruments = *db.CreateAttribute(
      m->music_groups, "group_instruments", m->instruments, true);
  ASSERT_TRUE(ws->DefineAttributeDerivation(
                    m->group_instruments,
                    AttributeDerivation::Assign(
                        Term::Self({m->members, m->plays})))
                  .ok());
  // groups_nonempty: every group keeps at least one member.
  Predicate c;
  Atom ca;
  ca.lhs = Term::Candidate({m->members});
  ca.op = SetOp::kWeakMatch;
  ca.rhs = Term::ClassExtent(m->musicians);
  c.AddAtom(ca, 0);
  ASSERT_TRUE(ws->DefineConstraint("groups_nonempty", m->music_groups, c).ok());
}

EntityId Nth(const EntitySet& set, size_t n) {
  auto it = set.begin();
  std::advance(it, n % set.size());
  return *it;
}

// --- The central property: after any randomized mutation stream, the
// delta-maintained workspace is byte-identical (through the serializer) to a
// twin that runs a full ReevaluateAll after every mutation. ---

class LiveEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveEquivalenceTest, DeltaMaintenanceMatchesFullRecompute) {
  auto ws_live = datasets::BuildInstrumentalMusic();
  auto ws_ref = datasets::BuildInstrumentalMusic();
  Music live = Resolve(ws_live.get());
  Music ref = Resolve(ws_ref.get());
  ASSERT_NO_FATAL_FAILURE(DefineExtraViews(ws_live.get(), &live));
  ASSERT_NO_FATAL_FAILURE(DefineExtraViews(ws_ref.get(), &ref));
  live::LiveViewEngine engine(ws_live.get());

  Rng rng(GetParam() * 31 + 3);
  int created = 0;
  for (int step = 0; step < 100; ++step) {
    // Pick the operation and its operands once, then apply identically to
    // both twins (ids are aligned by construction).
    switch (rng.Below(6)) {
      case 0: {  // Toggle an instrument in a musician's plays.
        EntityId mu = Nth(live.db->Members(live.musicians), rng.Below(64));
        EntityId in = Nth(live.db->Members(live.instruments), rng.Below(64));
        if (live.db->GetMulti(mu, live.plays).count(in) > 0) {
          ASSERT_TRUE(live.db->RemoveFromMulti(mu, live.plays, in).ok());
          ASSERT_TRUE(ref.db->RemoveFromMulti(mu, ref.plays, in).ok());
        } else {
          ASSERT_TRUE(live.db->AddToMulti(mu, live.plays, in).ok());
          ASSERT_TRUE(ref.db->AddToMulti(mu, ref.plays, in).ok());
        }
        break;
      }
      case 1: {  // Toggle a musician in a group's members.
        EntityId g = Nth(live.db->Members(live.music_groups), rng.Below(64));
        EntityId mu = Nth(live.db->Members(live.musicians), rng.Below(64));
        if (live.db->GetMulti(g, live.members).count(mu) > 0) {
          ASSERT_TRUE(live.db->RemoveFromMulti(g, live.members, mu).ok());
          ASSERT_TRUE(ref.db->RemoveFromMulti(g, ref.members, mu).ok());
        } else {
          ASSERT_TRUE(live.db->AddToMulti(g, live.members, mu).ok());
          ASSERT_TRUE(ref.db->AddToMulti(g, ref.members, mu).ok());
        }
        break;
      }
      case 2: {  // Resize a group.
        EntityId g = Nth(live.db->Members(live.music_groups), rng.Below(64));
        int n = static_cast<int>(rng.Below(6)) + 1;
        ASSERT_TRUE(
            live.db->SetSingle(g, live.size, live.db->InternInteger(n)).ok());
        ASSERT_TRUE(
            ref.db->SetSingle(g, ref.size, ref.db->InternInteger(n)).ok());
        break;
      }
      case 3: {  // Reclassify an instrument's family.
        EntityId in = Nth(live.db->Members(live.instruments), rng.Below(64));
        size_t fi = rng.Below(64);
        EntityId f_live = Nth(live.db->Members(live.families), fi);
        EntityId f_ref = Nth(ref.db->Members(ref.families), fi);
        ASSERT_TRUE(live.db->SetSingle(in, live.family, f_live).ok());
        ASSERT_TRUE(ref.db->SetSingle(in, ref.family, f_ref).ok());
        break;
      }
      case 4: {  // A new musician appears.
        std::string name = "new_musician_" + std::to_string(created++);
        Result<EntityId> e_live = live.db->CreateEntity(live.musicians, name);
        Result<EntityId> e_ref = ref.db->CreateEntity(ref.musicians, name);
        ASSERT_TRUE(e_live.ok());
        ASSERT_TRUE(e_ref.ok());
        ASSERT_EQ(*e_live, *e_ref);
        EntityId in = Nth(live.db->Members(live.instruments), rng.Below(64));
        ASSERT_TRUE(live.db->AddToMulti(*e_live, live.plays, in).ok());
        ASSERT_TRUE(ref.db->AddToMulti(*e_ref, ref.plays, in).ok());
        break;
      }
      default: {  // A musician retires (guarded delete; scrubs references).
        if (!rng.Chance(0.25)) break;  // Keep deletions rare.
        EntityId mu = Nth(live.db->Members(live.musicians), rng.Below(64));
        ASSERT_TRUE(ws_live->DeleteEntity(mu).ok());
        ASSERT_TRUE(ws_ref->DeleteEntity(mu).ok());
        break;
      }
    }
    ASSERT_TRUE(ws_ref->ReevaluateAll().ok());
    if (step % 20 == 19) {
      ASSERT_EQ(store::Save(*ws_live), store::Save(*ws_ref))
          << "diverged at step " << step;
    }
  }
  EXPECT_TRUE(engine.last_error().ok()) << engine.last_error().ToString();
  EXPECT_EQ(store::Save(*ws_live), store::Save(*ws_ref));
  // Maintained violations match a fresh full check.
  auto maintained = engine.Violations();
  auto fresh = ws_live->CheckConstraints();
  ASSERT_EQ(maintained.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(maintained[i].constraint, fresh[i].constraint);
    EXPECT_EQ(maintained[i].violators, fresh[i].violators);
  }
  EXPECT_TRUE(sdm::ConsistencyChecker(*live.db).Check().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u, 1234u));

// --- Cascades: a data edit ripples through view-feeds-view chains with no
// manual recomputation anywhere. ---

TEST(LiveEngineTest, ViewFeedsViewCascadePropagates) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  ASSERT_NO_FATAL_FAILURE(DefineExtraViews(ws.get(), &m));
  EXPECT_EQ(ws->db().Members(m.string_groups).size(), 1u);
  live::LiveViewEngine engine(ws.get());
  // Vera's only stringed instrument goes away: play_strings must drop her
  // and string_groups must drop String Quartet West — both without any call
  // to ReevaluateAll.
  EntityId vera = *m.db->FindEntity(m.musicians, "Vera");
  EntityId guitar = *m.db->FindEntity(m.instruments, "guitar");
  ASSERT_TRUE(m.db->RemoveFromMulti(vera, m.plays, guitar).ok());
  EXPECT_FALSE(m.db->IsMember(vera, m.play_strings));
  EXPECT_TRUE(m.db->Members(m.string_groups).empty());
  EXPECT_TRUE(engine.last_error().ok()) << engine.last_error().ToString();
  EXPECT_TRUE(sdm::ConsistencyChecker(*m.db).Check().ok());
}

TEST(LiveEngineTest, DerivedAttributeFollowsPointMutations) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  ASSERT_NO_FATAL_FAILURE(DefineExtraViews(ws.get(), &m));
  live::LiveViewEngine engine(ws.get());
  EntityId duo = *m.db->FindEntity(m.music_groups, "Duo Zephyr");
  EntityId edith = *m.db->FindEntity(m.musicians, "Edith");
  ASSERT_TRUE(m.db->AddToMulti(duo, m.members, edith).ok());
  // group_instruments = members.plays must now include Edith's instruments.
  const EntitySet& derived = m.db->GetMulti(duo, m.group_instruments);
  for (EntityId in : m.db->GetMulti(edith, m.plays)) {
    EXPECT_TRUE(derived.count(in) > 0) << m.db->NameOf(in);
  }
  EXPECT_TRUE(engine.last_error().ok());
}

// --- Counters: point mutations stay incremental; schema edits fall back to
// full recomputes. ---

TEST(LiveEngineTest, PointMutationsNeverFullRecompute) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  live::LiveViewEngine engine(ws.get());
  EntityId ray = *m.db->FindEntity(m.musicians, "Ray");
  EntityId violin = *m.db->FindEntity(m.instruments, "violin");
  ASSERT_TRUE(m.db->AddToMulti(ray, m.plays, violin).ok());
  EXPECT_TRUE(m.db->IsMember(ray, m.play_strings));
  const live::ViewStats* vs = engine.FindViewStats("play_strings");
  ASSERT_NE(vs, nullptr);
  EXPECT_GE(vs->deltas_applied, 1);
  EXPECT_GE(vs->entities_retested, 1);
  EXPECT_EQ(vs->full_recomputes, 0);
  EXPECT_GE(engine.stats().deltas_seen, 1);
  EXPECT_GE(engine.stats().drains, 1);
}

TEST(LiveEngineTest, SchemaChangeFallsBackToFullRecompute) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  live::LiveViewEngine engine(ws.get());
  // Re-specifying a value class is a coarse schema edit: the engine must
  // resynchronize by fully recomputing every view.
  ASSERT_TRUE(m.db->SetValueClass(m.size, Schema::kIntegers()).ok());
  const live::ViewStats* vs = engine.FindViewStats("play_strings");
  ASSERT_NE(vs, nullptr);
  EXPECT_GE(vs->full_recomputes, 1);
  EXPECT_GE(engine.stats().index_rebuilds, 1);
}

// --- The liar subclass: a = { e | e not in a } can never settle; the engine
// must record a Consistency error instead of looping forever. ---

TEST(LiveEngineTest, CyclicDerivationRecordsConsistencyError) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  ClassId a_cls =
      *m.db->CreateSubclass("cyc_a", m.musicians, Membership::kEnumerated);
  live::LiveViewEngine engine(ws.get());
  Predicate p;
  Atom atom;
  atom.lhs = Term::Candidate();  // identity map: {e}
  atom.op = SetOp::kSubset;
  atom.negated = true;
  atom.rhs = Term::ClassExtent(a_cls);
  p.AddAtom(atom, 0);
  (void)ws->DefineSubclassMembership(a_cls, p);
  (void)engine.Violations();  // force catalog catch-up
  EXPECT_TRUE(engine.last_error().IsConsistency())
      << engine.last_error().ToString();
  // The error is sticky until cleared, then maintenance resumes.
  engine.ClearLastError();
  EXPECT_TRUE(engine.last_error().ok());
}

// --- Constraints defined after attach are picked up lazily (defining one
// touches no database state, so Violations() is where the engine catches
// up). ---

TEST(LiveEngineTest, ConstraintViolationsTrackMutations) {
  auto ws = datasets::BuildInstrumentalMusic();
  Music m = Resolve(ws.get());
  live::LiveViewEngine engine(ws.get());
  Predicate c;
  Atom ca;
  ca.lhs = Term::Candidate({m.members});
  ca.op = SetOp::kWeakMatch;
  ca.rhs = Term::ClassExtent(m.musicians);
  c.AddAtom(ca, 0);
  ASSERT_TRUE(ws->DefineConstraint("groups_nonempty", m.music_groups, c).ok());
  EXPECT_TRUE(engine.Violations().empty());
  // Empty out a duo: the violation must appear incrementally.
  EntityId duo = *m.db->FindEntity(m.music_groups, "Duo Zephyr");
  EntitySet members = m.db->GetMulti(duo, m.members);
  for (EntityId mu : members) {
    ASSERT_TRUE(m.db->RemoveFromMulti(duo, m.members, mu).ok());
  }
  auto violations = engine.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint, "groups_nonempty");
  EXPECT_EQ(violations[0].violators, EntitySet{duo});
}

// --- The opt-in flag persists through the store. ---

TEST(LiveEngineTest, LiveViewsOptionRoundTripsThroughStore) {
  sdm::Database::Options opt;
  opt.live_views = true;
  Workspace ws(opt);
  auto loaded = store::Load(store::Save(ws));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->db().options().live_views);
  // Legacy files without the field load with the engine off.
  sdm::Database::Options off;
  Workspace ws_off(off);
  EXPECT_FALSE(store::Load(store::Save(ws_off)).ValueOrDie()
                   ->db()
                   .options()
                   .live_views);
}

}  // namespace
}  // namespace isis
