/// \file session_replay_test.cpp
/// \brief Integration test: the paper's complete §4.2 session replays
/// against the §4.1 database and produces the documented outcomes at every
/// figure point.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "datasets/session_script.h"
#include "sdm/consistency.h"
#include "store/serializer.h"
#include "ui/controller.h"

namespace isis {
namespace {

using datasets::BuildInstrumentalMusic;
using datasets::PaperSessionFigures;
using sdm::Database;
using ui::Level;
using ui::SchemaSelection;
using ui::SessionController;

class SessionReplayTest : public ::testing::Test {
 protected:
  SessionReplayTest() : session_(BuildInstrumentalMusic()) {}

  /// Replays figure segments up to and including `through` (1-based).
  void ReplayThrough(int through) {
    const auto& figs = PaperSessionFigures();
    ASSERT_LE(through, static_cast<int>(figs.size()));
    for (int i = 0; i < through; ++i) {
      Status st = session_.RunScript(figs[i].script);
      ASSERT_TRUE(st.ok()) << figs[i].name << ": " << st.ToString();
    }
  }

  const Database& db() { return session_.workspace().db(); }

  SessionController session_;
};

TEST_F(SessionReplayTest, Figure1SelectsSoloists) {
  ReplayThrough(1);
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
  ASSERT_EQ(session_.state().selection.kind, SchemaSelection::Kind::kClass);
  EXPECT_EQ(db().schema().GetClass(session_.state().selection.cls).name,
            "soloists");
  // The rendered screen shows the hand icon and the class boxes.
  std::string screen = session_.Render().canvas.ToString();
  EXPECT_NE(screen.find("soloists"), std::string::npos);
  EXPECT_NE(screen.find("hand"), std::string::npos);
  EXPECT_NE(screen.find("musicians"), std::string::npos);
}

TEST_F(SessionReplayTest, Figure2NetworkOnInstruments) {
  ReplayThrough(2);
  EXPECT_EQ(session_.state().level, Level::kSemanticNetwork);
  EXPECT_EQ(db().schema().GetClass(session_.state().selection.cls).name,
            "instruments");
  std::string screen = session_.Render().canvas.ToString();
  EXPECT_NE(screen.find("family"), std::string::npos);
  EXPECT_NE(screen.find("popular"), std::string::npos);
}

TEST_F(SessionReplayTest, Figure3SelectsFluteAndOboe) {
  ReplayThrough(3);
  EXPECT_EQ(session_.state().level, Level::kDataLevel);
  ASSERT_EQ(session_.state().pages.size(), 1u);
  const ui::DataPage& page = session_.state().pages[0];
  EXPECT_EQ(page.selected.size(), 2u);
  EXPECT_TRUE(page.selected.count(*db().FindEntity(
      *db().schema().FindClass("instruments"), "flute")));
}

TEST_F(SessionReplayTest, Figure4FollowsFamilyToBrassError) {
  ReplayThrough(4);
  ASSERT_EQ(session_.state().pages.size(), 2u);
  const ui::DataPage& top = session_.state().pages[1];
  // "brass is the only family highlighted" — the deliberate data error.
  ASSERT_EQ(top.selected.size(), 1u);
  EXPECT_EQ(db().NameOf(*top.selected.begin()), "brass");
}

TEST_F(SessionReplayTest, Figure5CorrectsTheFamilyAttribute) {
  ReplayThrough(5);
  ClassId instruments = *db().schema().FindClass("instruments");
  AttributeId family = *db().schema().FindAttribute(instruments, "family");
  EntityId flute = *db().FindEntity(instruments, "flute");
  EntityId oboe = *db().FindEntity(instruments, "oboe");
  EXPECT_EQ(db().NameOf(db().GetSingle(flute, family)), "woodwind");
  EXPECT_EQ(db().NameOf(db().GetSingle(oboe, family)), "woodwind");
}

TEST_F(SessionReplayTest, Figure6GroupingPageSelectsPercussion) {
  ReplayThrough(6);
  ASSERT_FALSE(session_.state().pages.empty());
  const ui::DataPage& top = session_.state().pages.back();
  EXPECT_TRUE(top.is_grouping);
  ASSERT_EQ(top.selected.size(), 1u);
  EXPECT_EQ(db().NameOf(*top.selected.begin()), "percussion");
}

TEST_F(SessionReplayTest, Figure7FollowsSetIntoInstruments) {
  ReplayThrough(7);
  ASSERT_EQ(session_.state().pages.size(), 2u);
  const ui::DataPage& top = session_.state().pages.back();
  EXPECT_FALSE(top.is_grouping);
  EXPECT_EQ(db().schema().GetClass(top.cls).name, "instruments");
  // The percussion instruments are highlighted.
  EXPECT_EQ(top.selected.size(), 3u);  // drums, cymbals, timpani
}

TEST_F(SessionReplayTest, Figure8CreatesQuartets) {
  ReplayThrough(8);
  Result<ClassId> quartets = db().schema().FindClass("quartets");
  ASSERT_TRUE(quartets.ok());
  EXPECT_EQ(db().schema().GetClass(*quartets).parent(),
            *db().schema().FindClass("music_groups"));
}

TEST_F(SessionReplayTest, Figure9BuildsThePredicate) {
  ReplayThrough(9);
  EXPECT_EQ(session_.state().level, Level::kPredicateWorksheet);
  const ui::WorksheetState& w = session_.state().worksheet;
  EXPECT_EQ(w.pred.form, query::NormalForm::kConjunctive);
  // Two clauses hold atoms A and E.
  ASSERT_GE(w.pred.clauses.size(), 2u);
  EXPECT_EQ(w.pred.clauses[0], std::vector<int>{4});  // atom E in clause 1
  EXPECT_EQ(w.pred.clauses[1], std::vector<int>{0});  // atom A in clause 2
  std::string screen = session_.Render().canvas.ToString();
  EXPECT_NE(screen.find("{4}"), std::string::npos);
  EXPECT_NE(screen.find("piano"), std::string::npos);
}

TEST_F(SessionReplayTest, Figure10CommitsAndDerivesAllInst) {
  ReplayThrough(10);
  // The quartets predicate was committed before the derivation started:
  // exactly one group qualifies.
  ClassId quartets = *db().schema().FindClass("quartets");
  ASSERT_EQ(db().Members(quartets).size(), 1u);
  EXPECT_EQ(db().NameOf(*db().Members(quartets).begin()), "LaBelle Quartet");
  // The worksheet shows the hand assignment.
  const ui::WorksheetState& w = session_.state().worksheet;
  EXPECT_TRUE(w.use_hand);
  ASSERT_EQ(w.hand_term.path.size(), 2u);
}

TEST_F(SessionReplayTest, Figure11FocusesOnEdith) {
  ReplayThrough(11);
  const ui::DataPage& top = session_.state().pages.back();
  EXPECT_EQ(db().schema().GetClass(top.cls).name, "musicians");
  ASSERT_EQ(top.selected.size(), 1u);
  EXPECT_EQ(db().NameOf(*top.selected.begin()), "Edith");
  // all_inst was committed: the quartet's instrument closure.
  ClassId quartets = *db().schema().FindClass("quartets");
  AttributeId all_inst = *db().schema().FindAttribute(quartets, "all_inst");
  EntityId labelle = *db().Members(quartets).begin();
  const sdm::EntitySet& values = db().GetMulti(labelle, all_inst);
  EXPECT_EQ(values.size(), 6u);  // viola violin cello harp piano organ
}

TEST_F(SessionReplayTest, Figure12CreatesEdithPlays) {
  ReplayThrough(12);
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
  Result<ClassId> edith_plays = db().schema().FindClass("edith_plays");
  ASSERT_TRUE(edith_plays.ok());
  EXPECT_EQ(db().schema().GetClass(*edith_plays).parent(),
            *db().schema().FindClass("instruments"));
  const sdm::EntitySet& members = db().Members(*edith_plays);
  ASSERT_EQ(members.size(), 2u);  // viola, violin
  // The hand icon points at the new subclass (paper: "correctly sets the
  // hand icon pointing at the new schema selection").
  EXPECT_EQ(session_.state().selection.cls, *edith_plays);
  std::string screen = session_.Render().canvas.ToString();
  EXPECT_NE(screen.find("edith_plays"), std::string::npos);
}

TEST_F(SessionReplayTest, FullSessionEndsConsistent) {
  ReplayThrough(12);
  // Save into a temp directory to avoid polluting the build tree.
  std::string dir = ::testing::TempDir();
  Status st = session_.RunScript("cmd save\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Answer the prompt with a path inside the temp dir.
  st = session_.RunScript("type " + dir + "/entertainment\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = session_.RunScript("cmd stop\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(session_.stopped());
  EXPECT_TRUE(sdm::ConsistencyChecker(db()).Check().ok());
  // The saved file reloads to an identical workspace.
  auto reloaded = store::LoadFromFile(dir + "/entertainment.isis");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(store::Save(**reloaded), store::Save(session_.workspace()));
}

TEST_F(SessionReplayTest, EveryFigureScreenIsDeterministic) {
  const auto& figs = PaperSessionFigures();
  SessionController other(BuildInstrumentalMusic());
  for (const auto& fig : figs) {
    ASSERT_TRUE(session_.RunScript(fig.script).ok());
    ASSERT_TRUE(other.RunScript(fig.script).ok());
    EXPECT_EQ(session_.Render().canvas.ToString(),
              other.Render().canvas.ToString())
        << "figure " << fig.name << " not deterministic";
  }
}

}  // namespace
}  // namespace isis
