/// \file plan_test.cpp
/// \brief Tests for the index-aware predicate planner (query/plan.h).
///
/// The contract is bit-identical equivalence: for any predicate the planner
/// can be handed, Evaluate/Test must return exactly what the naive
/// per-entity scan returns. A randomized property test drives both paths
/// over generated predicates (all operators, negation, multi-step maps,
/// constants, class extents, both normal forms, dead constants); golden
/// checks pin the shapes that must pick the probe path in Explain().

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "query/eval.h"
#include "query/plan.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Schema;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    families_ = *s.FindClass("families");
    music_groups_ = *s.FindClass("music_groups");
    family_ = *s.FindAttribute(instruments_, "family");
    plays_ = *s.FindAttribute(musicians_, "plays");
    members_ = *s.FindAttribute(music_groups_, "members");
    size_ = *s.FindAttribute(music_groups_, "size");
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }

  /// Planner result must equal the naive scan (grouping fast path off too).
  EntitySet CheckEquivalent(const Predicate& p, ClassId v) {
    Evaluator naive(*db_);
    naive.set_use_planner(false);
    naive.set_use_grouping_index(false);
    EntitySet scan = naive.EvaluateSubclass(p, v);
    PlannedPredicate plan(*db_, p, v);
    EXPECT_EQ(plan.Evaluate(db_->Members(v)), scan);
    // Test() must agree entity-by-entity with the set answer.
    PlannedPredicate point(*db_, p, v);
    for (EntityId e : db_->Members(v)) {
      EXPECT_EQ(point.Test(e), scan.count(e) > 0) << db_->NameOf(e);
    }
    return scan;
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, families_, music_groups_;
  AttributeId family_, plays_, members_, size_;
};

TEST_F(PlanTest, EqualityPicksTheProbePath) {
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({family_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant({E(families_, "percussion")});
  p.AddAtom(a, 0);
  std::string plan = Evaluator(*db_).Explain(p, instruments_);
  EXPECT_NE(plan.find("clause 1: probe"), std::string::npos) << plan;
  EXPECT_NE(plan.find("probe e.family = {percussion}"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("actual=3"), std::string::npos) << plan;  // 3 drums etc
  EXPECT_NE(plan.find("result=3"), std::string::npos) << plan;
  CheckEquivalent(p, instruments_);
}

TEST_F(PlanTest, MembershipProbesTheInvertedIndex) {
  // Multivalued superset: musicians who play both viola and violin.
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kSuperset;
  a.rhs = Term::Constant(
      {E(instruments_, "viola"), E(instruments_, "violin")});
  p.AddAtom(a, 0);
  std::string plan = Evaluator(*db_).Explain(p, musicians_);
  EXPECT_NE(plan.find("probe e.plays"), std::string::npos) << plan;
  EXPECT_NE(plan.find("scanned=0"), std::string::npos) << plan;
  EXPECT_EQ(CheckEquivalent(p, musicians_).size(), 1u);  // Edith
}

TEST_F(PlanTest, NegationAndLongMapsStayScans) {
  Predicate p;
  Atom neg;
  neg.lhs = Term::Candidate({family_});
  neg.op = SetOp::kEqual;
  neg.negated = true;
  neg.rhs = Term::Constant({E(families_, "percussion")});
  p.AddAtom(neg, 0);
  Atom path;
  path.lhs = Term::Candidate({plays_, family_});
  path.op = SetOp::kWeakMatch;
  path.rhs = Term::Constant({E(families_, "stringed")});
  Predicate p2;
  p2.AddAtom(path, 0);
  EXPECT_NE(Evaluator(*db_).Explain(p, instruments_).find("scan "),
            std::string::npos);
  EXPECT_NE(Evaluator(*db_).Explain(p2, musicians_).find("scan "),
            std::string::npos);
  CheckEquivalent(p, instruments_);
  CheckEquivalent(p2, musicians_);
}

TEST_F(PlanTest, MixedClausesPrefilterThenScan) {
  // CNF: (plays ~ {piano, organ}) AND (NOT union). The first conjunct is a
  // probe and must prefilter; the second is scanned over survivors only.
  AttributeId union_attr = *db_->schema().FindAttribute(musicians_, "union");
  Predicate p;
  Atom probe;
  probe.lhs = Term::Candidate({plays_});
  probe.op = SetOp::kWeakMatch;
  probe.rhs = Term::Constant(
      {E(instruments_, "piano"), E(instruments_, "organ")});
  p.AddAtom(probe, 0);
  Atom sc;
  sc.lhs = Term::Candidate({union_attr});
  sc.op = SetOp::kEqual;
  sc.negated = true;
  sc.rhs = Term::Constant({db_->InternBoolean(true)});
  p.AddAtom(sc, 1);
  PlannedPredicate plan(*db_, p, musicians_);
  EntitySet result = plan.Evaluate(db_->Members(musicians_));
  EXPECT_EQ(result, CheckEquivalent(p, musicians_));
  // The scan stage only saw the probe survivors.
  EXPECT_LT(plan.stats().scanned, plan.stats().candidates_in);
  EXPECT_EQ(plan.stats().after_prefilter, plan.stats().scanned);
  std::string text = plan.Explain();
  EXPECT_NE(text.find("probe"), std::string::npos) << text;
  EXPECT_NE(text.find("scan"), std::string::npos) << text;
}

TEST_F(PlanTest, DisjunctiveProbeClausesUnionDirectly) {
  // DNF: (family = keyboard) OR (family = percussion) — both clauses probe,
  // nothing is scanned.
  Predicate p;
  p.form = NormalForm::kDisjunctive;
  Atom kb;
  kb.lhs = Term::Candidate({family_});
  kb.op = SetOp::kEqual;
  kb.rhs = Term::Constant({E(families_, "keyboard")});
  p.AddAtom(kb, 0);
  Atom pc;
  pc.lhs = Term::Candidate({family_});
  pc.op = SetOp::kEqual;
  pc.rhs = Term::Constant({E(families_, "percussion")});
  p.AddAtom(pc, 1);
  PlannedPredicate plan(*db_, p, instruments_);
  EntitySet result = plan.Evaluate(db_->Members(instruments_));
  EXPECT_EQ(result, CheckEquivalent(p, instruments_));
  EXPECT_EQ(plan.stats().scanned, 0);
  EXPECT_EQ(result.size(), 5u);  // piano, organ + 3 percussion
}

TEST_F(PlanTest, SinglevaluedEqualityAgainstTwoConstantsIsProvablyEmpty) {
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({family_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant(
      {E(families_, "percussion"), E(families_, "keyboard")});
  p.AddAtom(a, 0);
  std::string plan = Evaluator(*db_).Explain(p, instruments_);
  EXPECT_NE(plan.find("probe(empty)"), std::string::npos) << plan;
  EXPECT_TRUE(CheckEquivalent(p, instruments_).empty());
}

TEST_F(PlanTest, DeadConstantsFallBackToTheScan) {
  // A probe for a deleted constant cannot be proven equivalent (the naive
  // side compares against the constant set verbatim): must stay a scan and
  // still agree.
  EntityId oboe = E(instruments_, "oboe");
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kSuperset;
  a.rhs = Term::Constant({oboe});
  p.AddAtom(a, 0);
  ASSERT_TRUE(db_->DeleteEntity(oboe).ok());
  EXPECT_NE(Evaluator(*db_).Explain(p, musicians_).find("scan "),
            std::string::npos);
  CheckEquivalent(p, musicians_);
}

TEST_F(PlanTest, SelfTermsEvaluateAgainstTheOwner) {
  // Form (c): members of the group whose plays-set weak-matches something —
  // here just check planner/naive agreement for a predicate using x.
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kWeakMatch;
  a.rhs = Term::Self({members_, plays_});
  p.AddAtom(a, 0);
  Evaluator naive(*db_);
  naive.set_use_planner(false);
  naive.set_use_grouping_index(false);
  for (EntityId x : db_->Members(music_groups_)) {
    PlannedPredicate plan(*db_, p, musicians_);
    EntitySet got = plan.Evaluate(db_->Members(musicians_), x);
    EntitySet want;
    for (EntityId e : db_->Members(musicians_)) {
      if (naive.EvalPredicate(p, e, x)) want.insert(e);
    }
    EXPECT_EQ(got, want) << db_->NameOf(x);
  }
}

TEST_F(PlanTest, EmptyPredicates) {
  Predicate cnf;  // empty conjunction: everything qualifies
  EXPECT_EQ(CheckEquivalent(cnf, instruments_).size(),
            db_->Members(instruments_).size());
  Predicate dnf;  // empty disjunction: nothing does
  dnf.form = NormalForm::kDisjunctive;
  EXPECT_TRUE(CheckEquivalent(dnf, instruments_).empty());
}

/// The acceptance-criteria property test: randomized predicates over the
/// scaled dataset, planner vs naive, both normal forms, every operator,
/// negation, dead constants, multi-step maps, class extents, multi-clause
/// structures. Any divergence is a planner soundness bug.
TEST(PlanPropertyTest, RandomizedPredicatesMatchNaiveScan) {
  auto ws = datasets::BuildScaledMusic(6);
  sdm::Database& db = ws->db();
  datasets::ScaledMusicHandles h = datasets::ResolveScaledMusic(*ws);
  Rng rng(2026);

  std::vector<EntityId> instruments(db.Members(h.instruments).begin(),
                                    db.Members(h.instruments).end());
  std::vector<EntityId> families(db.Members(h.families).begin(),
                                 db.Members(h.families).end());
  std::vector<EntityId> musicians(db.Members(h.musicians).begin(),
                                  db.Members(h.musicians).end());
  const std::vector<SetOp> ops = {
      SetOp::kEqual,       SetOp::kSubset,        SetOp::kSuperset,
      SetOp::kProperSubset, SetOp::kProperSuperset, SetOp::kWeakMatch};

  auto pick = [&](const std::vector<EntityId>& pool, int max_n) {
    EntitySet out;
    int n = 1 + static_cast<int>(rng.Below(max_n));
    for (int i = 0; i < n; ++i) out.insert(pool[rng.Below(pool.size())]);
    return out;
  };

  for (int trial = 0; trial < 120; ++trial) {
    // Candidate class alternates between musicians and instruments.
    bool over_musicians = rng.Chance(0.5);
    ClassId v = over_musicians ? h.musicians : h.instruments;
    Predicate p;
    p.form = rng.Chance(0.5) ? NormalForm::kConjunctive
                             : NormalForm::kDisjunctive;
    int clauses = 1 + static_cast<int>(rng.Below(3));
    for (int c = 0; c < clauses; ++c) {
      int atoms = 1 + static_cast<int>(rng.Below(2));
      for (int k = 0; k < atoms; ++k) {
        Atom a;
        a.op = ops[rng.Below(ops.size())];
        a.negated = rng.Chance(0.25);
        if (over_musicians) {
          if (rng.Chance(0.3)) {
            a.lhs = Term::Candidate({h.plays, h.family});  // two-step map
            a.rhs = Term::Constant(pick(families, 2));
          } else {
            a.lhs = Term::Candidate({h.plays});
            a.rhs = rng.Chance(0.15)
                        ? Term::ClassExtent(h.instruments)
                        : Term::Constant(pick(instruments, 3));
          }
        } else {
          a.lhs = Term::Candidate({h.family});
          a.rhs = Term::Constant(pick(families, 2));
        }
        p.AddAtom(a, c);
      }
    }
    Evaluator naive(db);
    naive.set_use_planner(false);
    naive.set_use_grouping_index(false);
    EntitySet scan = naive.EvaluateSubclass(p, v);
    PlannedPredicate plan(db, p, v);
    EXPECT_EQ(plan.Evaluate(db.Members(v)), scan)
        << "trial " << trial << "\n"
        << plan.Explain();
    // Mutate between trials so plans run against a moving database and the
    // incrementally-maintained indexes.
    EntityId m = musicians[rng.Below(musicians.size())];
    EntityId i = instruments[rng.Below(instruments.size())];
    if (rng.Chance(0.5)) {
      ASSERT_TRUE(db.AddToMulti(m, h.plays, i).ok());
    } else {
      ASSERT_TRUE(
          db.SetSingle(i, h.family, families[rng.Below(families.size())])
              .ok());
    }
  }
}

}  // namespace
}  // namespace isis::query
