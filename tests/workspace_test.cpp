/// \file workspace_test.cpp
/// \brief Tests for the stored-query catalog: derived subclasses, derived
/// attributes, re-evaluation, fixpoints and reference guards.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/workspace.h"
#include "sdm/consistency.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

class WorkspaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    music_groups_ = *s.FindClass("music_groups");
    plays_ = *s.FindAttribute(musicians_, "plays");
    size_ = *s.FindAttribute(music_groups_, "size");
    members_ = *s.FindAttribute(music_groups_, "members");
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }
  Predicate SizeIs(int n) {
    Predicate p;
    Atom a;
    a.lhs = Term::Candidate({size_});
    a.op = SetOp::kEqual;
    a.rhs = Term::Constant({db_->InternInteger(n)});
    p.AddAtom(a, 0);
    return p;
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, music_groups_;
  AttributeId plays_, size_, members_;
};

TEST_F(WorkspaceTest, DatasetStoresThePlayStringsPredicate) {
  ClassId play_strings = *db_->schema().FindClass("play_strings");
  ASSERT_NE(ws_->SubclassPredicate(play_strings), nullptr);
  // Edith, Karen, Lucy, Vera play stringed instruments.
  EXPECT_EQ(db_->Members(play_strings).size(), 4u);
  EXPECT_TRUE(db_->IsMember(E(musicians_, "Edith"), play_strings));
  EXPECT_FALSE(db_->IsMember(E(musicians_, "Ray"), play_strings));
}

TEST_F(WorkspaceTest, DefineSubclassMembershipEvaluatesImmediately) {
  ClassId duos = *db_->CreateSubclass("duos", music_groups_,
                                      Membership::kEnumerated);
  ASSERT_TRUE(ws_->DefineSubclassMembership(duos, SizeIs(2)).ok());
  EXPECT_EQ(db_->schema().GetClass(duos).membership, Membership::kDerived);
  EXPECT_EQ(db_->Members(duos).size(), 1u);
  EXPECT_EQ(db_->NameOf(*db_->Members(duos).begin()), "Duo Zephyr");
}

TEST_F(WorkspaceTest, StoredQueriesReevaluateAgainstNewData) {
  ClassId duos = *db_->CreateSubclass("duos", music_groups_,
                                      Membership::kEnumerated);
  ASSERT_TRUE(ws_->DefineSubclassMembership(duos, SizeIs(2)).ok());
  // A new duo appears; the stored query picks it up on re-evaluation.
  EntityId pair = *db_->CreateEntity(music_groups_, "New Pair");
  ASSERT_TRUE(db_->SetSingle(pair, size_, db_->InternInteger(2)).ok());
  EXPECT_EQ(db_->Members(duos).size(), 1u);  // not yet
  ASSERT_TRUE(ws_->ReevaluateSubclass(duos).ok());
  EXPECT_EQ(db_->Members(duos).size(), 2u);
  // And drops entities that stop satisfying the predicate.
  ASSERT_TRUE(db_->SetSingle(pair, size_, db_->InternInteger(3)).ok());
  ASSERT_TRUE(ws_->ReevaluateSubclass(duos).ok());
  EXPECT_EQ(db_->Members(duos).size(), 1u);
}

TEST_F(WorkspaceTest, DefineRejectsIllTypedPredicates) {
  ClassId duos = *db_->CreateSubclass("duos", music_groups_,
                                      Membership::kEnumerated);
  Predicate bad;
  Atom a;
  a.lhs = Term::Candidate({size_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant({E(instruments_, "piano")});  // wrong tree
  bad.AddAtom(a, 0);
  EXPECT_TRUE(ws_->DefineSubclassMembership(duos, bad).IsTypeError());
  // The class stays enumerated.
  EXPECT_EQ(db_->schema().GetClass(duos).membership, Membership::kEnumerated);
}

TEST_F(WorkspaceTest, BaseclassCannotHaveMembershipPredicate) {
  EXPECT_TRUE(
      ws_->DefineSubclassMembership(musicians_, SizeIs(1)).IsConsistency());
}

TEST_F(WorkspaceTest, AttributeAssignmentDerivation) {
  AttributeId all_inst =
      *db_->CreateAttribute(music_groups_, "all_inst", instruments_, true);
  ASSERT_TRUE(ws_->DefineAttributeDerivation(
                    all_inst, AttributeDerivation::Assign(
                                  Term::Self({members_, plays_})))
                  .ok());
  EXPECT_EQ(db_->schema().GetAttribute(all_inst).origin,
            sdm::AttrOrigin::kDerived);
  EXPECT_EQ(
      db_->GetMulti(E(music_groups_, "LaBelle Quartet"), all_inst).size(),
      6u);
  EXPECT_EQ(db_->GetMulti(E(music_groups_, "Brass Trio"), all_inst).size(),
            5u);  // trumpet tuba trombone drums cymbals
}

TEST_F(WorkspaceTest, AttributePredicateDerivation) {
  // colleagues(x) = { e in musicians | e.plays ~ x.plays } (form (c)).
  AttributeId colleagues =
      *db_->CreateAttribute(musicians_, "colleagues", musicians_, true);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kWeakMatch;
  a.rhs = Term::Self({plays_});
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws_->DefineAttributeDerivation(
                    colleagues, AttributeDerivation::FromPredicate(p))
                  .ok());
  const EntitySet& edith = db_->GetMulti(E(musicians_, "Edith"), colleagues);
  EXPECT_TRUE(edith.count(E(musicians_, "Lucy")) > 0);   // shares violin
  EXPECT_FALSE(edith.count(E(musicians_, "Ray")) > 0);
}

TEST_F(WorkspaceTest, DerivedAttributesMustBeMultivalued) {
  AttributeId single =
      *db_->CreateAttribute(music_groups_, "leader", musicians_, false);
  EXPECT_TRUE(ws_->DefineAttributeDerivation(
                     single, AttributeDerivation::Assign(
                                 Term::Self({members_})))
                  .IsTypeError());
}

TEST_F(WorkspaceTest, DerivedOfDerivedReachesFixpoint) {
  // big_string_groups = derived over derived play_strings data: groups
  // whose members all play strings. Build: groups with members subset of
  // play_strings.
  ClassId play_strings = *db_->schema().FindClass("play_strings");
  ClassId string_groups = *db_->CreateSubclass(
      "string_groups", music_groups_, Membership::kEnumerated);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({members_});
  a.op = SetOp::kSubset;
  a.rhs = Term::ClassExtent(play_strings);
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws_->DefineSubclassMembership(string_groups, p).ok());
  EXPECT_EQ(db_->Members(string_groups).size(), 1u);  // String Quartet West
  // Change the data so play_strings changes, and let ReevaluateAll chase
  // the chain to a fixpoint.
  EntityId vera = E(musicians_, "Vera");
  ASSERT_TRUE(db_->RemoveFromMulti(vera, plays_,
                                   E(instruments_, "guitar"))
                  .ok());
  ASSERT_TRUE(ws_->ReevaluateAll().ok());
  EXPECT_FALSE(db_->IsMember(vera, play_strings));
  EXPECT_TRUE(db_->Members(string_groups).empty());
  EXPECT_TRUE(sdm::ConsistencyChecker(*db_).Check().ok());
}

TEST_F(WorkspaceTest, CyclicDerivationsDetected) {
  // The liar subclass: a = { e | e not in a } oscillates and can never
  // reach a fixpoint; ReevaluateAll must report it rather than loop.
  ClassId a_cls = *db_->CreateSubclass("cyc_a", musicians_,
                                       Membership::kEnumerated);
  Predicate p;
  Atom atom;
  atom.lhs = Term::Candidate();  // identity map: {e}
  atom.op = SetOp::kSubset;
  atom.negated = true;
  atom.rhs = Term::ClassExtent(a_cls);
  p.AddAtom(atom, 0);
  ASSERT_TRUE(ws_->DefineSubclassMembership(a_cls, p).ok());
  EXPECT_TRUE(ws_->ReevaluateAll(8).IsConsistency());
}

TEST_F(WorkspaceTest, GuardedAttributeDeletion) {
  // plays is referenced by the stored play_strings predicate.
  EXPECT_TRUE(ws_->AttributeReferencedByQueries(plays_));
  EXPECT_TRUE(ws_->DeleteAttribute(plays_).IsConsistency());
  EXPECT_TRUE(db_->schema().HasAttribute(plays_));
  // size is not referenced by any stored query in the dataset.
  EXPECT_FALSE(ws_->AttributeReferencedByQueries(size_));
}

TEST_F(WorkspaceTest, GuardedClassDeletion) {
  // musicians is a value class of members: the schema layer refuses.
  EXPECT_FALSE(ws_->DeleteClass(musicians_).ok());
  // A class owning an attribute referenced by a stored query elsewhere
  // refuses even when the schema rules would allow the deletion.
  ClassId duos =
      *db_->CreateSubclass("duos", music_groups_, Membership::kEnumerated);
  AttributeId motto =
      *db_->CreateAttribute(duos, "motto", Schema::kStrings(), true);
  AttributeId mottos = *db_->CreateAttribute(
      music_groups_, "mottos", Schema::kStrings(), true);
  // Derived attribute on music_groups stepping through duos' motto (a
  // descendant step: non-duos drop out at evaluation).
  ASSERT_TRUE(ws_->DefineAttributeDerivation(
                    mottos, AttributeDerivation::Assign(Term::Self({motto})))
                  .ok());
  EXPECT_TRUE(ws_->DeleteClass(duos).IsConsistency());
  // Redefining the derivation away from motto unblocks the deletion.
  ASSERT_TRUE(ws_->DefineAttributeDerivation(
                    mottos, AttributeDerivation::Assign(
                                Term::Constant({db_->InternString("x")})))
                  .ok());
  ASSERT_TRUE(ws_->DeleteClass(duos).ok());
}

TEST_F(WorkspaceTest, DeleteEntityScrubsStoredConstants) {
  ClassId pianists = *db_->CreateSubclass("pianists", musicians_,
                                          Membership::kEnumerated);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kSuperset;
  a.rhs = Term::Constant({E(instruments_, "piano")});
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws_->DefineSubclassMembership(pianists, p).ok());
  EXPECT_EQ(db_->Members(pianists).size(), 2u);  // Mark, Zack
  EntityId piano = E(instruments_, "piano");
  ASSERT_TRUE(ws_->DeleteEntity(piano).ok());
  // The constant was scrubbed: e.plays ]= {} is now trivially true.
  ASSERT_TRUE(ws_->ReevaluateSubclass(pianists).ok());
  EXPECT_EQ(db_->Members(pianists).size(),
            db_->Members(musicians_).size());
  EXPECT_TRUE(sdm::ConsistencyChecker(*db_).Check().ok());
}

TEST_F(WorkspaceTest, StoredCountsAndRestore) {
  EXPECT_EQ(ws_->StoredSubclassCount(), 1u);  // play_strings
  EXPECT_EQ(ws_->StoredAttributeCount(), 0u);
  Workspace fresh;
  fresh.RestoreSubclassPredicate(ClassId(42), Predicate{});
  EXPECT_EQ(fresh.StoredSubclassCount(), 1u);
}

}  // namespace
}  // namespace isis::query
