/// \file schema_test.cpp
/// \brief Unit tests for the schema catalog and its two graphs (paper §2).

#include <gtest/gtest.h>

#include <set>

#include "sdm/schema.h"

namespace isis::sdm {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  Schema schema_;
};

TEST_F(SchemaTest, PredefinedBaseclassesAlwaysPresent) {
  // "We assume that the standard baseclasses ... are always in our schema."
  EXPECT_TRUE(schema_.HasClass(Schema::kIntegers()));
  EXPECT_TRUE(schema_.HasClass(Schema::kReals()));
  EXPECT_TRUE(schema_.HasClass(Schema::kBooleans()));
  EXPECT_TRUE(schema_.HasClass(Schema::kStrings()));
  EXPECT_EQ(schema_.GetClass(Schema::kIntegers()).name, "INTEGER");
  EXPECT_EQ(schema_.GetClass(Schema::kBooleans()).name, "YES/NO");
  EXPECT_EQ(schema_.Baseclasses().size(), 4u);
  EXPECT_TRUE(schema_.Validate().ok());
}

TEST_F(SchemaTest, PredefinedClassesHaveNamingAttributes) {
  // "The first attribute in a baseclass is the naming attribute."
  for (ClassId base : schema_.Baseclasses()) {
    const ClassDef& def = schema_.GetClass(base);
    ASSERT_FALSE(def.own_attributes.empty());
    EXPECT_TRUE(schema_.GetAttribute(def.own_attributes[0]).naming);
  }
}

TEST_F(SchemaTest, PredefinedClassFor) {
  EXPECT_EQ(Schema::PredefinedClassFor(BaseKind::kInteger),
            Schema::kIntegers());
  EXPECT_EQ(Schema::PredefinedClassFor(BaseKind::kString),
            Schema::kStrings());
  EXPECT_FALSE(Schema::PredefinedClassFor(BaseKind::kNone).valid());
}

TEST_F(SchemaTest, CreateBaseclassWithNamingAttribute) {
  Result<ClassId> cls = schema_.CreateBaseclass("musicians", "stage_name");
  ASSERT_TRUE(cls.ok());
  const ClassDef& def = schema_.GetClass(*cls);
  EXPECT_TRUE(def.is_base());
  EXPECT_EQ(def.membership, Membership::kBase);
  ASSERT_EQ(def.own_attributes.size(), 1u);
  const AttributeDef& naming = schema_.GetAttribute(def.own_attributes[0]);
  EXPECT_EQ(naming.name, "stage_name");
  EXPECT_TRUE(naming.naming);
  EXPECT_EQ(naming.value_class, Schema::kStrings());
  EXPECT_FALSE(naming.multivalued);
}

TEST_F(SchemaTest, ClassNamesAreUnique) {
  ASSERT_TRUE(schema_.CreateBaseclass("c", "name").ok());
  EXPECT_TRUE(schema_.CreateBaseclass("c", "name").status().IsAlreadyExists());
  // Class and grouping names share one namespace.
  ClassId c = *schema_.FindClass("c");
  AttributeId naming = schema_.GetClass(c).own_attributes[0];
  ASSERT_TRUE(schema_.CreateGrouping("g", c, naming).ok());
  EXPECT_TRUE(
      schema_.CreateBaseclass("g", "name").status().IsAlreadyExists());
}

TEST_F(SchemaTest, InvalidNamesRejected) {
  EXPECT_TRUE(schema_.CreateBaseclass("", "n").status().IsInvalidArgument());
  EXPECT_TRUE(
      schema_.CreateBaseclass("a|b", "n").status().IsInvalidArgument());
  // A bad naming attribute must roll the class back entirely.
  EXPECT_FALSE(schema_.CreateBaseclass("ok_class", "bad|attr").ok());
  EXPECT_FALSE(schema_.FindClass("ok_class").ok());
}

class SchemaTreeTest : public SchemaTest {
 protected:
  void SetUp() override {
    base_ = *schema_.CreateBaseclass("animals", "name");
    a_legs_ = *schema_.CreateAttribute(base_, "legs", Schema::kIntegers(),
                                       false);
    mid_ = *schema_.CreateSubclass("mammals", base_, Membership::kEnumerated);
    a_fur_ = *schema_.CreateAttribute(mid_, "fur", Schema::kBooleans(), false);
    leaf_ = *schema_.CreateSubclass("dogs", mid_, Membership::kEnumerated);
  }
  ClassId base_, mid_, leaf_;
  AttributeId a_legs_, a_fur_;
};

TEST_F(SchemaTreeTest, ForestNavigation) {
  EXPECT_EQ(schema_.RootOf(leaf_), base_);
  EXPECT_EQ(schema_.AncestorsOf(leaf_), (std::vector<ClassId>{mid_, base_}));
  EXPECT_EQ(schema_.ChildrenOf(base_), (std::vector<ClassId>{mid_}));
  EXPECT_EQ(schema_.SelfAndDescendants(base_),
            (std::vector<ClassId>{base_, mid_, leaf_}));
  EXPECT_TRUE(schema_.IsAncestorOrSelf(base_, leaf_));
  EXPECT_TRUE(schema_.IsAncestorOrSelf(leaf_, leaf_));
  EXPECT_FALSE(schema_.IsAncestorOrSelf(leaf_, base_));
}

TEST_F(SchemaTreeTest, InheritedAttributesRootFirst) {
  // "Members of a class inherit the attributes from all of their
  // superclasses"; the display order is root-most ancestor first.
  std::vector<AttributeId> attrs = schema_.AllAttributesOf(leaf_);
  ASSERT_EQ(attrs.size(), 3u);  // name, legs, fur
  EXPECT_TRUE(schema_.GetAttribute(attrs[0]).naming);
  EXPECT_EQ(schema_.GetAttribute(attrs[1]).name, "legs");
  EXPECT_EQ(schema_.GetAttribute(attrs[2]).name, "fur");
  EXPECT_TRUE(schema_.AttributeVisibleOn(leaf_, a_legs_));
  EXPECT_FALSE(schema_.AttributeVisibleOn(base_, a_fur_));
}

TEST_F(SchemaTreeTest, AttributeNameCollisions) {
  // Visible on owner already.
  EXPECT_TRUE(schema_.CreateAttribute(leaf_, "legs", Schema::kIntegers(),
                                      false)
                  .status()
                  .IsAlreadyExists());
  // Would shadow a descendant's attribute.
  EXPECT_TRUE(schema_.CreateAttribute(base_, "fur", Schema::kBooleans(),
                                      false)
                  .status()
                  .IsAlreadyExists());
  // Sibling subtrees do not collide.
  ClassId cats =
      *schema_.CreateSubclass("cats", mid_, Membership::kEnumerated);
  EXPECT_TRUE(
      schema_.CreateAttribute(cats, "whiskers", Schema::kIntegers(), false)
          .ok());
  EXPECT_TRUE(
      schema_.CreateAttribute(leaf_, "whiskers", Schema::kIntegers(), false)
          .ok());
}

TEST_F(SchemaTreeTest, FindAttributeResolvesInheritance) {
  Result<AttributeId> legs = schema_.FindAttribute(leaf_, "legs");
  ASSERT_TRUE(legs.ok());
  EXPECT_EQ(*legs, a_legs_);
  EXPECT_TRUE(schema_.FindAttribute(base_, "fur").status().IsNotFound());
}

TEST_F(SchemaTreeTest, DeleteClassPreconditions) {
  // "we may delete a class, provided it is not the parent of some other
  // class or the value class of some attribute".
  EXPECT_TRUE(schema_.DeleteClass(mid_).IsConsistency());
  ASSERT_TRUE(schema_.DeleteClass(leaf_).ok());
  // Now mid_ is a leaf but is it a value class? No. But give it a grouping.
  GroupingId g = *schema_.CreateGrouping("by_fur", mid_, a_fur_);
  EXPECT_TRUE(schema_.DeleteClass(mid_).IsConsistency());
  ASSERT_TRUE(schema_.DeleteGrouping(g).ok());
  ASSERT_TRUE(schema_.DeleteClass(mid_).ok());
  EXPECT_FALSE(schema_.HasClass(mid_));
  EXPECT_FALSE(schema_.HasAttribute(a_fur_));  // owned attributes die too
  EXPECT_TRUE(schema_.Validate().ok());
}

TEST_F(SchemaTreeTest, ValueClassBlocksDeletion) {
  ClassId owners = *schema_.CreateBaseclass("owners", "name");
  ASSERT_TRUE(schema_.CreateAttribute(owners, "pet", leaf_, false).ok());
  ASSERT_TRUE(schema_.DeleteClass(leaf_).IsConsistency());
  EXPECT_TRUE(schema_.IsValueClassOfSomeAttribute(leaf_));
}

TEST_F(SchemaTreeTest, PredefinedClassesArePermanent) {
  EXPECT_TRUE(
      schema_.DeleteClass(Schema::kIntegers()).IsConsistency());
}

TEST_F(SchemaTreeTest, RenameClass) {
  ASSERT_TRUE(schema_.RenameClass(leaf_, "hounds").ok());
  EXPECT_EQ(schema_.GetClass(leaf_).name, "hounds");
  EXPECT_TRUE(schema_.FindClass("dogs").status().IsNotFound());
  EXPECT_EQ(*schema_.FindClass("hounds"), leaf_);
  // Renaming onto an existing name fails.
  EXPECT_TRUE(schema_.RenameClass(leaf_, "animals").IsAlreadyExists());
  // Renaming to itself is a no-op.
  EXPECT_TRUE(schema_.RenameClass(leaf_, "hounds").ok());
}

TEST_F(SchemaTreeTest, RenameAttributeChecksCollisions) {
  ASSERT_TRUE(schema_.RenameAttribute(a_fur_, "coat").ok());
  EXPECT_EQ(schema_.GetAttribute(a_fur_).name, "coat");
  EXPECT_TRUE(schema_.RenameAttribute(a_fur_, "legs").IsAlreadyExists());
}

TEST_F(SchemaTreeTest, DeleteAttributePreconditions) {
  GroupingId g = *schema_.CreateGrouping("by_legs", base_, a_legs_);
  EXPECT_TRUE(schema_.DeleteAttribute(a_legs_).IsConsistency());
  ASSERT_TRUE(schema_.DeleteGrouping(g).ok());
  ASSERT_TRUE(schema_.DeleteAttribute(a_legs_).ok());
  EXPECT_FALSE(schema_.HasAttribute(a_legs_));
  // Naming attributes cannot be deleted.
  AttributeId naming = schema_.GetClass(base_).own_attributes[0];
  EXPECT_TRUE(schema_.DeleteAttribute(naming).IsConsistency());
}

TEST_F(SchemaTreeTest, GroupingRules) {
  // A grouping must be on an attribute visible on its parent.
  EXPECT_TRUE(schema_.CreateGrouping("bad", base_, a_fur_)
                  .status()
                  .IsConsistency());
  GroupingId g = *schema_.CreateGrouping("by_fur", mid_, a_fur_);
  EXPECT_EQ(schema_.GetGrouping(g).parent, mid_);
  EXPECT_EQ(schema_.GroupingsOf(mid_), (std::vector<GroupingId>{g}));
  EXPECT_TRUE(schema_.Validate().ok());
  // Inherited attributes are fine.
  EXPECT_TRUE(schema_.CreateGrouping("leaf_by_legs", leaf_, a_legs_).ok());
}

TEST_F(SchemaTreeTest, AttributeIntoGrouping) {
  GroupingId g = *schema_.CreateGrouping("by_legs", base_, a_legs_);
  ClassId zoos = *schema_.CreateBaseclass("zoos", "name");
  Result<AttributeId> attr =
      schema_.CreateAttributeIntoGrouping(zoos, "exhibits", g);
  ASSERT_TRUE(attr.ok());
  const AttributeDef& def = schema_.GetAttribute(*attr);
  // "This attribute B is treated as B: S ++> parent(G)."
  EXPECT_TRUE(def.multivalued);
  EXPECT_EQ(def.value_class, base_);
  EXPECT_EQ(def.value_grouping, g);
  // The grouping now cannot be deleted.
  EXPECT_TRUE(schema_.DeleteGrouping(g).IsConsistency());
}

TEST_F(SchemaTreeTest, SemanticNetworkArcs) {
  // "The outgoing arcs of a class node correspond to its attributes,
  // including those that are inherited."
  std::vector<Schema::NetworkArc> arcs = schema_.OutgoingArcs(leaf_);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_TRUE(arcs[1].inherited);  // legs, owned by animals
  // fur is owned by mammals, so it too arrives at dogs by inheritance.
  EXPECT_EQ(schema_.GetAttribute(arcs[2].attribute).name, "fur");
  EXPECT_TRUE(arcs[2].inherited);

  std::vector<Schema::NetworkArc> incoming =
      schema_.IncomingArcs(SchemaNode::Class(Schema::kIntegers()));
  bool found_legs = false;
  for (const auto& arc : incoming) {
    if (arc.attribute == a_legs_) found_legs = true;
  }
  EXPECT_TRUE(found_legs);
}

TEST_F(SchemaTreeTest, SetMembership) {
  EXPECT_TRUE(schema_.SetMembership(leaf_, Membership::kDerived).ok());
  EXPECT_EQ(schema_.GetClass(leaf_).membership, Membership::kDerived);
  EXPECT_TRUE(
      schema_.SetMembership(base_, Membership::kDerived).IsConsistency());
  EXPECT_TRUE(
      schema_.SetMembership(leaf_, Membership::kBase).IsConsistency());
}

TEST_F(SchemaTreeTest, SetAttributeOrigin) {
  EXPECT_TRUE(schema_.SetAttributeOrigin(a_fur_, AttrOrigin::kDerived).ok());
  EXPECT_EQ(schema_.GetAttribute(a_fur_).origin, AttrOrigin::kDerived);
  AttributeId naming = schema_.GetClass(base_).own_attributes[0];
  EXPECT_TRUE(schema_.SetAttributeOrigin(naming, AttrOrigin::kDerived)
                  .IsConsistency());
}

TEST_F(SchemaTreeTest, FillPatternsUnique) {
  std::set<int> patterns;
  for (ClassId c : schema_.AllClasses()) {
    EXPECT_TRUE(patterns.insert(schema_.GetClass(c).fill_pattern).second);
  }
  GroupingId g = *schema_.CreateGrouping("by_legs", base_, a_legs_);
  EXPECT_TRUE(patterns.insert(schema_.GetGrouping(g).fill_pattern).second);
}

TEST_F(SchemaTreeTest, SubclassOfGroupingImpossible) {
  // Groupings "have no attributes, subclasses or groupings"; the API keeps
  // them out of the class namespace entirely.
  EXPECT_TRUE(schema_.CreateSubclass("x", ClassId(999),
                                     Membership::kEnumerated)
                  .status()
                  .IsNotFound());
}

TEST_F(SchemaTreeTest, MultipleParentsDisabledByDefault) {
  ClassId other = *schema_.CreateSubclass("pets", base_,
                                          Membership::kEnumerated);
  EXPECT_TRUE(schema_.AddParent(leaf_, other).IsUnimplemented());
}

}  // namespace
}  // namespace isis::sdm
