/// \file strings_test.cpp
/// \brief Unit tests for the shared string utilities.

#include <gtest/gtest.h>

#include "common/strings.h"

namespace isis {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a|b|c", '|'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '|'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a||c", '|'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("|", '|'), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, Inverse) {
  std::vector<std::string> parts{"x", "", "z"};
  EXPECT_EQ(Join(parts, ","), "x,,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("attr:family", "attr:"));
  EXPECT_FALSE(StartsWith("att", "attr:"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("YES/No"), "yes/no");
  EXPECT_EQ(ToLower("already"), "already");
}

TEST(IsValidNameTest, AcceptsTypicalNames) {
  EXPECT_TRUE(IsValidName("musicians"));
  EXPECT_TRUE(IsValidName("by_family"));
  EXPECT_TRUE(IsValidName("LaBelle Quartet"));
  EXPECT_TRUE(IsValidName("YES/NO"));
  EXPECT_TRUE(IsValidName("a"));
}

TEST(IsValidNameTest, RejectsBadNames) {
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName(" leading"));
  EXPECT_FALSE(IsValidName("trailing "));
  EXPECT_FALSE(IsValidName("pipe|name"));
  EXPECT_FALSE(IsValidName("tick`name"));
  EXPECT_FALSE(IsValidName("new\nline"));
  EXPECT_FALSE(IsValidName(std::string("nul\0l", 5)));
}

TEST(EscapeTest, RoundTrips) {
  const std::string cases[] = {
      "plain", "with|pipe", "back\\slash", "multi\nline", "\\n tricky \\p",
      "", "|||", "\\",
  };
  for (const std::string& s : cases) {
    EXPECT_EQ(Unescape(Escape(s)), s) << "case: " << s;
  }
}

TEST(EscapeTest, EscapedFormHasNoSeparators) {
  std::string escaped = Escape("a|b\nc");
  EXPECT_EQ(escaped.find('|'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

TEST(UnescapeTest, MalformedDecodesToQuestionMark) {
  EXPECT_EQ(Unescape("bad\\"), "bad?");
  EXPECT_EQ(Unescape("bad\\q"), "bad?");
}

TEST(PadToTest, PadsAndTruncates) {
  EXPECT_EQ(PadTo("ab", 4), "ab  ");
  EXPECT_EQ(PadTo("abcdef", 4), "abcd");
  EXPECT_EQ(PadTo("", 2), "  ");
}

TEST(FormatRealTest, TrimsAndRoundTrips) {
  EXPECT_EQ(FormatReal(2.0), "2");
  EXPECT_EQ(FormatReal(3.5), "3.5");
  EXPECT_EQ(FormatReal(0.25), "0.25");
  EXPECT_EQ(FormatReal(-1.5), "-1.5");
}

}  // namespace
}  // namespace isis
