/// \file eval_test.cpp
/// \brief Tests for predicate type checking and evaluation: the operator
/// semantics of §2 and the worksheet's commit-time checks.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/eval.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Schema;

Predicate MakePredicate(Atom atom) {
  Predicate p;
  p.AddAtom(std::move(atom), 0);
  return p;
}

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    music_groups_ = *s.FindClass("music_groups");
    families_ = *s.FindClass("families");
    plays_ = *s.FindAttribute(musicians_, "plays");
    family_ = *s.FindAttribute(instruments_, "family");
    members_ = *s.FindAttribute(music_groups_, "members");
    size_ = *s.FindAttribute(music_groups_, "size");
    union_ = *s.FindAttribute(musicians_, "union");
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }
  Evaluator Eval() { return Evaluator(*db_); }
  PredicateContext Ctx(ClassId v) {
    PredicateContext ctx;
    ctx.candidate_class = v;
    return ctx;
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, music_groups_, families_;
  AttributeId plays_, family_, members_, size_, union_;
};

// --- Set comparison operator semantics. ---

TEST_F(EvalTest, CompareOperators) {
  Evaluator eval = Eval();
  EntityId a = db_->InternInteger(1);
  EntityId b = db_->InternInteger(2);
  EntityId c = db_->InternInteger(3);
  EntitySet ab{a, b}, abc{a, b, c}, bc{b, c}, empty;

  EXPECT_TRUE(eval.Compare(ab, SetOp::kEqual, ab));
  EXPECT_FALSE(eval.Compare(ab, SetOp::kEqual, abc));

  EXPECT_TRUE(eval.Compare(ab, SetOp::kSubset, abc));
  EXPECT_TRUE(eval.Compare(ab, SetOp::kSubset, ab));
  EXPECT_FALSE(eval.Compare(abc, SetOp::kSubset, ab));

  EXPECT_TRUE(eval.Compare(abc, SetOp::kSuperset, ab));
  EXPECT_TRUE(eval.Compare(ab, SetOp::kSuperset, ab));

  EXPECT_TRUE(eval.Compare(ab, SetOp::kProperSubset, abc));
  EXPECT_FALSE(eval.Compare(ab, SetOp::kProperSubset, ab));
  EXPECT_TRUE(eval.Compare(abc, SetOp::kProperSuperset, bc));
  EXPECT_FALSE(eval.Compare(bc, SetOp::kProperSuperset, bc));

  // "a weak match operator (~) to determine if two sets have a common
  // element".
  EXPECT_TRUE(eval.Compare(ab, SetOp::kWeakMatch, bc));
  EXPECT_FALSE(eval.Compare(EntitySet{a}, SetOp::kWeakMatch, EntitySet{c}));
  EXPECT_FALSE(eval.Compare(empty, SetOp::kWeakMatch, abc));

  // Empty-set edge cases.
  EXPECT_TRUE(eval.Compare(empty, SetOp::kSubset, ab));
  EXPECT_TRUE(eval.Compare(empty, SetOp::kEqual, empty));
}

TEST_F(EvalTest, OrderingOperatorsAreSingletonOnly) {
  Evaluator eval = Eval();
  EntitySet one{db_->InternInteger(1)};
  EntitySet two{db_->InternInteger(2)};
  EntitySet both{db_->InternInteger(1), db_->InternInteger(2)};
  EXPECT_TRUE(eval.Compare(one, SetOp::kLessEqual, two));
  EXPECT_TRUE(eval.Compare(one, SetOp::kLessEqual, one));
  EXPECT_FALSE(eval.Compare(two, SetOp::kLessEqual, one));
  EXPECT_TRUE(eval.Compare(two, SetOp::kGreater, one));
  // Non-singletons never order.
  EXPECT_FALSE(eval.Compare(both, SetOp::kLessEqual, two));
  EXPECT_FALSE(eval.Compare(one, SetOp::kGreater, EntitySet{}));
}

TEST_F(EvalTest, OrderingInteroperatesIntegerReal) {
  Evaluator eval = Eval();
  EXPECT_TRUE(eval.Compare({db_->InternInteger(2)}, SetOp::kLessEqual,
                           {db_->InternReal(2.5)}));
  EXPECT_TRUE(eval.Compare({db_->InternReal(3.5)}, SetOp::kGreater,
                           {db_->InternInteger(3)}));
}

TEST_F(EvalTest, OrderingOnStrings) {
  Evaluator eval = Eval();
  EXPECT_TRUE(eval.Compare({db_->InternString("abc")}, SetOp::kLessEqual,
                           {db_->InternString("abd")}));
}

// --- Atom evaluation (the paper's atom forms). ---

TEST_F(EvalTest, FormB_MapAgainstConstant) {
  // e.plays.family ~ {stringed} — the play_strings predicate.
  Atom atom;
  atom.lhs = Term::Candidate({plays_, family_});
  atom.op = SetOp::kWeakMatch;
  atom.rhs = Term::Constant({E(families_, "stringed")});
  Evaluator eval = Eval();
  EXPECT_TRUE(eval.EvalAtom(atom, E(musicians_, "Edith"), sdm::kNullEntity));
  EXPECT_FALSE(eval.EvalAtom(atom, E(musicians_, "Ray"), sdm::kNullEntity));
}

TEST_F(EvalTest, FormA_MapAgainstMap) {
  // Musicians whose plays-families set equals exactly {stringed}:
  // e.plays.family = e.plays.family is trivially true; compare two
  // different maps instead: union members vs plays non-emptiness via ~.
  Atom atom;
  atom.lhs = Term::Candidate({plays_});
  atom.op = SetOp::kWeakMatch;
  atom.rhs = Term::Candidate({plays_});
  Evaluator eval = Eval();
  // True whenever the set is nonempty (shares an element with itself).
  EXPECT_TRUE(eval.EvalAtom(atom, E(musicians_, "Edith"), sdm::kNullEntity));
}

TEST_F(EvalTest, NegationFlipsTruth) {
  Atom atom;
  atom.lhs = Term::Candidate({plays_, family_});
  atom.op = SetOp::kWeakMatch;
  atom.rhs = Term::Constant({E(families_, "stringed")});
  atom.negated = true;
  Evaluator eval = Eval();
  EXPECT_FALSE(eval.EvalAtom(atom, E(musicians_, "Edith"), sdm::kNullEntity));
  EXPECT_TRUE(eval.EvalAtom(atom, E(musicians_, "Ray"), sdm::kNullEntity));
}

TEST_F(EvalTest, ClassExtentTerm) {
  // e.plays = instruments  (plays everything? nobody does)
  Atom atom;
  atom.lhs = Term::Candidate({plays_});
  atom.op = SetOp::kSuperset;
  atom.rhs = Term::ClassExtent(instruments_);
  Evaluator eval = Eval();
  EXPECT_TRUE(eval.EvaluateSubclass(MakePredicate(atom), musicians_).empty());
}

// --- Normal forms. ---

TEST_F(EvalTest, CnfAndDnfEvaluation) {
  Atom size4;
  size4.lhs = Term::Candidate({size_});
  size4.op = SetOp::kEqual;
  size4.rhs = Term::Constant({db_->InternInteger(4)});
  Atom size2;
  size2.lhs = Term::Candidate({size_});
  size2.op = SetOp::kEqual;
  size2.rhs = Term::Constant({db_->InternInteger(2)});

  // DNF, atoms in different clauses: size==4 OR size==2.
  Predicate dnf;
  dnf.AddAtom(size4, 0);
  dnf.AddAtom(size2, 1);
  dnf.form = NormalForm::kDisjunctive;
  Evaluator eval = Eval();
  EXPECT_EQ(eval.EvaluateSubclass(dnf, music_groups_).size(), 3u);

  // CNF with the same clause structure: size==4 AND size==2 — impossible.
  Predicate cnf = dnf;
  cnf.form = NormalForm::kConjunctive;
  EXPECT_TRUE(eval.EvaluateSubclass(cnf, music_groups_).empty());

  // CNF with both atoms in ONE clause: OR within the clause.
  Predicate cnf_one;
  cnf_one.AddAtom(size4, 0);
  cnf_one.AddAtom(size2, 0);
  cnf_one.form = NormalForm::kConjunctive;
  EXPECT_EQ(eval.EvaluateSubclass(cnf_one, music_groups_).size(), 3u);
}

TEST_F(EvalTest, EmptyNormalFormSemantics) {
  Evaluator eval = Eval();
  Predicate empty_cnf;  // empty conjunction = true
  EXPECT_EQ(eval.EvaluateSubclass(empty_cnf, music_groups_).size(),
            db_->Members(music_groups_).size());
  Predicate empty_dnf;
  empty_dnf.form = NormalForm::kDisjunctive;  // empty disjunction = false
  EXPECT_TRUE(eval.EvaluateSubclass(empty_dnf, music_groups_).empty());
  // Unused (empty) clause windows are skipped, not treated as false.
  Predicate with_window;
  Atom a;
  a.lhs = Term::Candidate({size_});
  a.op = SetOp::kGreater;
  a.rhs = Term::Constant({db_->InternInteger(0)});
  with_window.AddAtom(a, 1);  // clause 0 stays empty
  with_window.form = NormalForm::kConjunctive;
  EXPECT_EQ(eval.EvaluateSubclass(with_window, music_groups_).size(),
            db_->Members(music_groups_).size());
}

// --- Type checking. ---

TEST_F(EvalTest, TypeCheckAcceptsThePaperPredicate) {
  Atom size4;
  size4.lhs = Term::Candidate({size_});
  size4.op = SetOp::kEqual;
  size4.rhs = Term::Constant({db_->InternInteger(4)});
  Atom piano;
  piano.lhs = Term::Candidate({members_, plays_});
  piano.op = SetOp::kSuperset;
  piano.rhs = Term::Constant({E(instruments_, "piano")});
  Predicate p;
  p.AddAtom(piano, 0);
  p.AddAtom(size4, 1);
  Status st = Eval().TypeCheck(p, Ctx(music_groups_));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(EvalTest, TypeCheckRejectsCrossTreeComparison) {
  Atom atom;
  atom.lhs = Term::Candidate({size_});  // terminates in INTEGER
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Constant({E(families_, "brass")});  // families tree
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(music_groups_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckRejectsOrderingOnUnorderedKinds) {
  Atom atom;
  atom.lhs = Term::Candidate({union_});  // YES/NO
  atom.op = SetOp::kGreater;
  atom.rhs = Term::Constant({db_->InternBoolean(false)});
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(musicians_)).IsTypeError());
  // Ordering on user-class terminals is rejected too.
  Atom atom2;
  atom2.lhs = Term::Candidate({plays_});
  atom2.op = SetOp::kGreater;
  atom2.rhs = Term::Constant({E(instruments_, "piano")});
  EXPECT_TRUE(Eval().TypeCheckAtom(atom2, Ctx(musicians_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckRejectsInapplicableMapStep) {
  Atom atom;
  atom.lhs = Term::Candidate({plays_, plays_});  // plays not on instruments
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Constant({E(instruments_, "piano")});
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(musicians_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckRejectsSelfOutsideDerivation) {
  Atom atom;
  atom.lhs = Term::Candidate({size_});
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Self();
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(music_groups_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckRejectsConstantLhs) {
  Atom atom;
  atom.lhs = Term::Constant({db_->InternInteger(4)});
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Candidate({size_});
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(music_groups_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckMixedBaseclassConstants) {
  Atom atom;
  atom.lhs = Term::Candidate({size_});
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Constant(
      {db_->InternInteger(4), db_->InternString("four")});
  EXPECT_TRUE(Eval().TypeCheckAtom(atom, Ctx(music_groups_)).IsTypeError());
}

TEST_F(EvalTest, TypeCheckAllowsDescendantStep) {
  // A step owned by a descendant of the reached class is allowed; entities
  // outside the descendant simply drop out at evaluation.
  ClassId play_strings = *db_->schema().FindClass("play_strings");
  AttributeId in_group =
      *db_->schema().FindAttribute(play_strings, "in_group");
  Atom atom;
  atom.lhs = Term::Candidate({in_group});  // in_group lives on play_strings
  atom.op = SetOp::kEqual;
  atom.rhs = Term::Constant({db_->InternBoolean(true)});
  Status st = Eval().TypeCheckAtom(atom, Ctx(musicians_));
  EXPECT_TRUE(st.ok()) << st.ToString();
  // Ray (no strings) drops out; Edith (string player in a group) matches.
  Evaluator eval = Eval();
  EXPECT_TRUE(eval.EvalAtom(atom, E(musicians_, "Edith"), sdm::kNullEntity));
  EXPECT_FALSE(eval.EvalAtom(atom, E(musicians_, "Ray"), sdm::kNullEntity));
}

TEST_F(EvalTest, AttributePredicateFormC) {
  // A(x) = { e in musicians | e.plays ~ x.plays } — "plays an instrument in
  // common with x".
  Atom atom;
  atom.lhs = Term::Candidate({plays_});
  atom.op = SetOp::kWeakMatch;
  atom.rhs = Term::Self({plays_});
  Predicate p;
  p.AddAtom(atom, 0);
  PredicateContext ctx;
  ctx.candidate_class = musicians_;
  ctx.self_class = musicians_;
  ASSERT_TRUE(Eval().TypeCheck(p, ctx).ok());
  Evaluator eval = Eval();
  EntitySet shared =
      eval.EvaluateAttributeFor(p, musicians_, E(musicians_, "Edith"));
  // Edith (viola, violin) shares the violin with Lucy and herself.
  EXPECT_TRUE(shared.count(E(musicians_, "Edith")) > 0);
  EXPECT_TRUE(shared.count(E(musicians_, "Lucy")) > 0);
  EXPECT_FALSE(shared.count(E(musicians_, "Ray")) > 0);
}

}  // namespace
}  // namespace isis::query
