/// \file database_test.cpp
/// \brief Unit tests for the data level: entities, membership, attribute
/// values and the paper's §2 mutation rules.

#include <gtest/gtest.h>

#include "sdm/consistency.h"
#include "sdm/database.h"

namespace isis::sdm {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    people_ = *db_.CreateBaseclass("people", "name");
    cities_ = *db_.CreateBaseclass("cities", "name");
    lives_in_ = *db_.CreateAttribute(people_, "lives_in", cities_, false);
    visited_ = *db_.CreateAttribute(people_, "visited", cities_, true);
    age_ = *db_.CreateAttribute(people_, "age", Schema::kIntegers(), false);
    adults_ =
        *db_.CreateSubclass("adults", people_, Membership::kEnumerated);
    voters_ =
        *db_.CreateSubclass("voters", adults_, Membership::kEnumerated);
    alice_ = *db_.CreateEntity(people_, "alice");
    bob_ = *db_.CreateEntity(people_, "bob");
    rome_ = *db_.CreateEntity(cities_, "rome");
    oslo_ = *db_.CreateEntity(cities_, "oslo");
  }

  void ExpectConsistent() {
    Status st = ConsistencyChecker(db_).Check();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  Database db_;
  ClassId people_, cities_, adults_, voters_;
  AttributeId lives_in_, visited_, age_;
  EntityId alice_, bob_, rome_, oslo_;
};

TEST_F(DatabaseTest, EntityBasics) {
  EXPECT_TRUE(db_.HasEntity(alice_));
  EXPECT_EQ(db_.NameOf(alice_), "alice");
  EXPECT_EQ(db_.GetEntity(alice_).baseclass, people_);
  EXPECT_EQ(*db_.FindEntity(people_, "alice"), alice_);
  EXPECT_TRUE(db_.FindEntity(people_, "zoe").status().IsNotFound());
  // Names unique within a baseclass; the same name is fine elsewhere.
  EXPECT_TRUE(db_.CreateEntity(people_, "alice").status().IsAlreadyExists());
  EXPECT_TRUE(db_.CreateEntity(cities_, "alice").ok());
}

TEST_F(DatabaseTest, EntitiesLiveInBaseclassesOnly) {
  EXPECT_TRUE(db_.CreateEntity(adults_, "carl").status().IsConsistency());
  EXPECT_TRUE(
      db_.CreateEntity(Schema::kIntegers(), "4").status().IsConsistency());
}

TEST_F(DatabaseTest, InterningIsIdempotentAndTyped) {
  EntityId four = db_.InternInteger(4);
  EXPECT_EQ(db_.InternInteger(4), four);
  EXPECT_EQ(db_.NameOf(four), "4");
  EXPECT_EQ(db_.GetEntity(four).baseclass, Schema::kIntegers());
  EXPECT_TRUE(db_.IsMember(four, Schema::kIntegers()));
  // Same display text, different kind, different entity.
  EntityId four_str = db_.InternString("4");
  EXPECT_NE(four_str, four);
  EXPECT_TRUE(db_.IsMember(four_str, Schema::kStrings()));
  // Booleans display as the Yes/No class.
  EXPECT_EQ(db_.NameOf(db_.InternBoolean(true)), "YES");
  // FindEntity on a predefined class parses and interns.
  EXPECT_EQ(*db_.FindEntity(Schema::kIntegers(), "4"), four);
  EXPECT_TRUE(db_.FindEntity(Schema::kIntegers(), "x").status().IsParseError());
}

TEST_F(DatabaseTest, NullEntityIsMemberOfEveryClass) {
  EXPECT_TRUE(db_.IsMember(kNullEntity, people_));
  EXPECT_TRUE(db_.IsMember(kNullEntity, voters_));
  EXPECT_TRUE(db_.IsMember(kNullEntity, Schema::kIntegers()));
  // ...but never listed.
  EXPECT_EQ(db_.Members(people_).count(kNullEntity), 0u);
}

TEST_F(DatabaseTest, MembershipPropagatesUpTheChain) {
  // "we can insert an entity in a class, provided we also insert it in its
  // parent" — the engine propagates.
  ASSERT_TRUE(db_.AddToClass(alice_, voters_).ok());
  EXPECT_TRUE(db_.IsMember(alice_, voters_));
  EXPECT_TRUE(db_.IsMember(alice_, adults_));
  EXPECT_TRUE(db_.IsMember(alice_, people_));
  ExpectConsistent();
}

TEST_F(DatabaseTest, MembershipRequiresSameBaseclassTree) {
  EXPECT_TRUE(db_.AddToClass(rome_, adults_).IsConsistency());
}

TEST_F(DatabaseTest, RemovalCascadesToDescendants) {
  ASSERT_TRUE(db_.AddToClass(alice_, voters_).ok());
  ASSERT_TRUE(db_.RemoveFromClass(alice_, adults_).ok());
  EXPECT_FALSE(db_.IsMember(alice_, adults_));
  EXPECT_FALSE(db_.IsMember(alice_, voters_));
  EXPECT_TRUE(db_.IsMember(alice_, people_));
  ExpectConsistent();
}

TEST_F(DatabaseTest, RemovalFromBaseclassForbidden) {
  EXPECT_TRUE(db_.RemoveFromClass(alice_, people_).IsConsistency());
}

TEST_F(DatabaseTest, SingleValuedAttributeLifecycle) {
  // Default is the null entity.
  EXPECT_EQ(db_.GetSingle(alice_, lives_in_), kNullEntity);
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  EXPECT_EQ(db_.GetSingle(alice_, lives_in_), rome_);
  // Assigning null clears.
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, kNullEntity).ok());
  EXPECT_EQ(db_.GetSingle(alice_, lives_in_), kNullEntity);
}

TEST_F(DatabaseTest, AttributeChecks) {
  // Value must be in the value class.
  EXPECT_TRUE(db_.SetSingle(alice_, lives_in_, bob_).IsConsistency());
  // Wrong arity.
  EXPECT_TRUE(db_.AddToMulti(alice_, lives_in_, rome_).IsTypeError());
  EXPECT_TRUE(db_.SetSingle(alice_, visited_, rome_).IsTypeError());
  // Entity must be a member of the attribute's owner.
  EXPECT_TRUE(db_.SetSingle(rome_, lives_in_, rome_).IsConsistency());
  // The null entity has no attributes.
  EXPECT_TRUE(db_.SetSingle(kNullEntity, lives_in_, rome_).IsNotFound());
  // Null cannot be a member of a multivalued set.
  EXPECT_TRUE(
      db_.AddToMulti(alice_, visited_, kNullEntity).IsInvalidArgument());
}

TEST_F(DatabaseTest, MultiValuedAttributeLifecycle) {
  EXPECT_TRUE(db_.GetMulti(alice_, visited_).empty());
  ASSERT_TRUE(db_.AddToMulti(alice_, visited_, rome_).ok());
  ASSERT_TRUE(db_.AddToMulti(alice_, visited_, oslo_).ok());
  EXPECT_EQ(db_.GetMulti(alice_, visited_).size(), 2u);
  ASSERT_TRUE(db_.RemoveFromMulti(alice_, visited_, rome_).ok());
  EXPECT_EQ(db_.GetMulti(alice_, visited_), EntitySet{oslo_});
  ASSERT_TRUE(db_.SetMulti(alice_, visited_, {rome_, oslo_}).ok());
  EXPECT_EQ(db_.GetMulti(alice_, visited_).size(), 2u);
  ExpectConsistent();
}

TEST_F(DatabaseTest, GetValueSetUnifiesArities) {
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  EXPECT_EQ(db_.GetValueSet(alice_, lives_in_), EntitySet{rome_});
  EXPECT_TRUE(db_.GetValueSet(bob_, lives_in_).empty());  // null -> empty
  ASSERT_TRUE(db_.AddToMulti(alice_, visited_, oslo_).ok());
  EXPECT_EQ(db_.GetValueSet(alice_, visited_), EntitySet{oslo_});
}

TEST_F(DatabaseTest, NamingAttributeReadsAndRenames) {
  AttributeId naming = db_.schema().GetClass(people_).own_attributes[0];
  EntityId name_value = db_.GetSingle(alice_, naming);
  EXPECT_EQ(db_.NameOf(name_value), "alice");
  EXPECT_EQ(db_.GetEntity(name_value).baseclass, Schema::kStrings());
  // Assigning the naming attribute renames the entity (UI semantics).
  ASSERT_TRUE(db_.SetSingle(alice_, naming, db_.InternString("alicia")).ok());
  EXPECT_EQ(db_.NameOf(alice_), "alicia");
  EXPECT_EQ(*db_.FindEntity(people_, "alicia"), alice_);
  EXPECT_TRUE(db_.FindEntity(people_, "alice").status().IsNotFound());
}

TEST_F(DatabaseTest, RenameEntity) {
  ASSERT_TRUE(db_.RenameEntity(alice_, "alina").ok());
  EXPECT_EQ(db_.NameOf(alice_), "alina");
  EXPECT_TRUE(db_.RenameEntity(bob_, "alina").IsAlreadyExists());
  // Interned value entities cannot be renamed.
  EXPECT_TRUE(db_.RenameEntity(db_.InternInteger(1), "one").IsConsistency());
}

TEST_F(DatabaseTest, DeleteEntityScrubsReferences) {
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  ASSERT_TRUE(db_.AddToMulti(bob_, visited_, rome_).ok());
  ASSERT_TRUE(db_.AddToMulti(bob_, visited_, oslo_).ok());
  ASSERT_TRUE(db_.DeleteEntity(rome_).ok());
  EXPECT_FALSE(db_.HasEntity(rome_));
  EXPECT_EQ(db_.GetSingle(alice_, lives_in_), kNullEntity);
  EXPECT_EQ(db_.GetMulti(bob_, visited_), EntitySet{oslo_});
  EXPECT_EQ(db_.Members(cities_).count(rome_), 0u);
  ExpectConsistent();
}

TEST_F(DatabaseTest, RemoveFromClassScrubsSubclassScopedReferences) {
  // An attribute whose value class is a subclass: removing the value entity
  // from the subclass must null out references.
  ClassId capitals =
      *db_.CreateSubclass("capitals", cities_, Membership::kEnumerated);
  AttributeId capital_of =
      *db_.CreateAttribute(people_, "favourite_capital", capitals, false);
  ASSERT_TRUE(db_.AddToClass(rome_, capitals).ok());
  ASSERT_TRUE(db_.SetSingle(alice_, capital_of, rome_).ok());
  ASSERT_TRUE(db_.RemoveFromClass(rome_, capitals).ok());
  EXPECT_EQ(db_.GetSingle(alice_, capital_of), kNullEntity);
  // The broader-class reference is untouched.
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  ExpectConsistent();
}

TEST_F(DatabaseTest, RemoveFromClassDropsOwnedAttributeRows) {
  AttributeId adult_since =
      *db_.CreateAttribute(adults_, "adult_since", Schema::kIntegers(), false);
  ASSERT_TRUE(db_.AddToClass(alice_, adults_).ok());
  ASSERT_TRUE(db_.SetSingle(alice_, adult_since, db_.InternInteger(2001)).ok());
  ASSERT_TRUE(db_.RemoveFromClass(alice_, adults_).ok());
  // Re-adding starts from the defaults.
  ASSERT_TRUE(db_.AddToClass(alice_, adults_).ok());
  EXPECT_EQ(db_.GetSingle(alice_, adult_since), kNullEntity);
}

TEST_F(DatabaseTest, DerivedClassMembershipIsManaged) {
  ClassId minors =
      *db_.CreateSubclass("minors", people_, Membership::kDerived);
  EXPECT_TRUE(db_.AddToClass(alice_, minors).IsConsistency());
  ASSERT_TRUE(db_.SetDerivedMembers(minors, {alice_, bob_}).ok());
  EXPECT_TRUE(db_.IsMember(alice_, minors));
  ASSERT_TRUE(db_.SetDerivedMembers(minors, {bob_}).ok());
  EXPECT_FALSE(db_.IsMember(alice_, minors));
  EXPECT_TRUE(db_.IsMember(bob_, minors));
  EXPECT_TRUE(db_.SetDerivedMembers(adults_, {}).IsInvalidArgument());
}

TEST_F(DatabaseTest, FindMemberChecksMembership) {
  ASSERT_TRUE(db_.AddToClass(alice_, adults_).ok());
  EXPECT_EQ(*db_.FindMember(adults_, "alice"), alice_);
  EXPECT_TRUE(db_.FindMember(adults_, "bob").status().IsNotFound());
  EXPECT_EQ(*db_.FindMember(Schema::kIntegers(), "12"),
            db_.InternInteger(12));
}

TEST_F(DatabaseTest, SetValueClassResetsOutOfClassValues) {
  ClassId capitals =
      *db_.CreateSubclass("capitals", cities_, Membership::kEnumerated);
  ASSERT_TRUE(db_.AddToClass(rome_, capitals).ok());
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  ASSERT_TRUE(db_.SetSingle(bob_, lives_in_, oslo_).ok());
  // Narrow lives_in to capitals: oslo is not a capital here, so bob resets.
  ASSERT_TRUE(db_.SetValueClass(lives_in_, capitals).ok());
  EXPECT_EQ(db_.GetSingle(alice_, lives_in_), rome_);
  EXPECT_EQ(db_.GetSingle(bob_, lives_in_), kNullEntity);
  ExpectConsistent();
}

TEST_F(DatabaseTest, MapEvaluation) {
  ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
  ASSERT_TRUE(db_.AddToMulti(alice_, visited_, rome_).ok());
  ASSERT_TRUE(db_.AddToMulti(alice_, visited_, oslo_).ok());
  AttributeId path1[] = {lives_in_};
  EXPECT_EQ(db_.EvaluateMap(alice_, path1), EntitySet{rome_});
  AttributeId path2[] = {visited_};
  EXPECT_EQ(db_.EvaluateMap(alice_, path2), (EntitySet{rome_, oslo_}));
  // Identity map.
  EXPECT_EQ(db_.EvaluateMap(alice_, {}), EntitySet{alice_});
  // Unassigned singlevalued: null never enters the image.
  EXPECT_TRUE(db_.EvaluateMap(bob_, path1).empty());
}

TEST_F(DatabaseTest, MapTerminalClass) {
  AttributeId path[] = {visited_};
  EXPECT_EQ(*db_.MapTerminalClass(people_, path), cities_);
  EXPECT_EQ(*db_.MapTerminalClass(people_, {}), people_);
  AttributeId bad_path[] = {visited_, visited_};
  EXPECT_TRUE(
      db_.MapTerminalClass(people_, bad_path).status().IsTypeError());
}

TEST_F(DatabaseTest, AllEntitiesExcludesDeletedAndNull) {
  size_t before = db_.AllEntities().size();
  ASSERT_TRUE(db_.DeleteEntity(bob_).ok());
  EXPECT_EQ(db_.AllEntities().size(), before - 1);
  for (EntityId e : db_.AllEntities()) {
    EXPECT_NE(e, kNullEntity);
    EXPECT_TRUE(db_.HasEntity(e));
  }
}

TEST_F(DatabaseTest, RestoreApiRoundTripsAnEntity) {
  Entity ghost;
  ghost.id = EntityId(100);
  ghost.baseclass = people_;
  ghost.name = "ghost";
  ASSERT_TRUE(db_.RestoreEntity(ghost).ok());
  EXPECT_TRUE(db_.HasEntity(EntityId(100)));
  EXPECT_FALSE(db_.HasEntity(EntityId(99)));  // gap slot is dead
  // Colliding id refuses.
  EXPECT_TRUE(db_.RestoreEntity(ghost).IsParseError());
}

}  // namespace
}  // namespace isis::sdm
