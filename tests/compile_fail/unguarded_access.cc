// Negative-compile case: writing an ISIS_GUARDED_BY field without holding
// its mutex. Under clang -Werror=thread-safety this must NOT compile
// ("writing variable 'count_' requires holding mutex 'mu_' exclusively").

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++count_;  // BAD: mu_ not held.
  }

 private:
  isis::Mutex mu_;
  int count_ ISIS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
