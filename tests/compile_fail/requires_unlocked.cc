// Negative-compile case: calling an ISIS_REQUIRES(mu_) function without
// holding mu_. Under clang -Werror=thread-safety this must NOT compile
// ("calling function 'RebuildLocked' requires holding mutex 'mu_'").

#include "common/sync.h"

namespace {

class Cache {
 public:
  void Refresh() {
    RebuildLocked();  // BAD: mu_ not held.
  }

 private:
  void RebuildLocked() ISIS_REQUIRES(mu_) { generation_ = generation_ + 1; }

  isis::Mutex mu_;
  int generation_ ISIS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Cache c;
  c.Refresh();
  return 0;
}
