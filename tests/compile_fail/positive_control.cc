// Positive control for the negative-compile harness: the same shapes as
// the failing cases, written correctly. This target MUST build under the
// exact flags that reject its siblings -- if it ever fails, the harness
// (not the discipline) is broken.

#include "common/status.h"
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() ISIS_EXCLUDES(mu_) {
    isis::MutexLock lock(mu_);
    ++count_;
  }

  int Get() ISIS_EXCLUDES(mu_) {
    isis::MutexLock lock(mu_);
    return count_;
  }

 private:
  isis::Mutex mu_;
  int count_ ISIS_GUARDED_BY(mu_) = 0;
};

class Cache {
 public:
  void Refresh() ISIS_EXCLUDES(mu_) {
    isis::MutexLock lock(mu_);
    RebuildLocked();
  }

 private:
  void RebuildLocked() ISIS_REQUIRES(mu_) { generation_ = generation_ + 1; }

  isis::Mutex mu_;
  int generation_ ISIS_GUARDED_BY(mu_) = 0;
};

isis::Status MightFail(int x) {
  if (x < 0) return isis::Status::InvalidArgument("negative");
  return isis::Status::OK();
}

}  // namespace

int main() {
  Counter c;
  c.Increment();
  Cache cache;
  cache.Refresh();
  isis::Status st = MightFail(42);
  if (!st.ok()) return 1;
  isis::LogIfError(MightFail(-1), "positive control");
  return c.Get() == 1 ? 0 : 1;
}
