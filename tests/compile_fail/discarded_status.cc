// Negative-compile case: dropping a [[nodiscard]] Status on the floor.
// Under -Werror=unused-result (GCC and Clang both) this must NOT compile;
// callers either propagate, test ok(), or route through LogIfError().

#include "common/status.h"

namespace {

isis::Status MightFail(int x) {
  if (x < 0) return isis::Status::InvalidArgument("negative");
  return isis::Status::OK();
}

}  // namespace

int main() {
  MightFail(42);  // BAD: result ignored.
  return 0;
}
