/// \file consistency_test.cpp
/// \brief Tests for the full §2 consistency checker: a clean database
/// passes, and each corruption class is detected by its rule.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "datasets/synthetic.h"
#include "sdm/consistency.h"

namespace isis::sdm {
namespace {

TEST(ConsistencyTest, CleanDatabasesPass) {
  auto ws = datasets::BuildInstrumentalMusic();
  EXPECT_TRUE(ConsistencyChecker(ws->db()).CheckAll().empty());

  datasets::SyntheticParams params;
  params.entities_per_class = 40;
  auto synthetic = datasets::BuildSynthetic(params);
  EXPECT_TRUE(ConsistencyChecker(synthetic->db()).CheckAll().empty());
}

TEST(ConsistencyTest, EmptyDatabasePasses) {
  Database db;
  EXPECT_TRUE(ConsistencyChecker(db).Check().ok());
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    people_ = *db_.CreateBaseclass("people", "name");
    cities_ = *db_.CreateBaseclass("cities", "name");
    lives_in_ = *db_.CreateAttribute(people_, "lives_in", cities_, false);
    adults_ = *db_.CreateSubclass("adults", people_, Membership::kEnumerated);
    alice_ = *db_.CreateEntity(people_, "alice");
    rome_ = *db_.CreateEntity(cities_, "rome");
    ASSERT_TRUE(db_.SetSingle(alice_, lives_in_, rome_).ok());
    ASSERT_TRUE(db_.AddToClass(alice_, adults_).ok());
  }

  bool HasViolation(Violation::Rule rule) {
    for (const Violation& v : ConsistencyChecker(db_).CheckAll()) {
      if (v.rule == rule) return true;
    }
    return false;
  }

  Database db_;
  ClassId people_, cities_, adults_;
  AttributeId lives_in_;
  EntityId alice_, rome_;
};

TEST_F(CorruptionTest, SubclassSubsetViolationDetected) {
  // Force a subclass member that is not in the parent via the restore API
  // (a foreign entity from another tree).
  ASSERT_TRUE(db_.RestoreMembers(adults_, {alice_, rome_}).ok());
  EXPECT_TRUE(HasViolation(Violation::Rule::kSubclassSubset));
}

TEST_F(CorruptionTest, GroupingDerivationViolationDetected) {
  GroupingId g = *db_.CreateGrouping("by_city", people_, lives_in_);
  (void)db_.GroupingBlocks(g);  // build the cache
  // Corrupt the data underneath the cache: the restore API bypasses the
  // grouping maintenance hooks, so the cached blocks go stale.
  EntityId oslo = *db_.CreateEntity(cities_, "oslo");
  ASSERT_TRUE(db_.RestoreSingle(lives_in_, alice_, oslo).ok());
  EXPECT_TRUE(HasViolation(Violation::Rule::kGroupingDerivation));
}

TEST_F(CorruptionTest, AttributeFunctionViolationDetected) {
  // A value outside the value class, installed via the restore API.
  EntityId bob = *db_.CreateEntity(people_, "bob");
  ASSERT_TRUE(db_.RestoreSingle(lives_in_, alice_, bob).ok());
  EXPECT_TRUE(HasViolation(Violation::Rule::kAttributeFunction));
}

TEST_F(CorruptionTest, ViolationsFormatNames) {
  ASSERT_TRUE(db_.RestoreMembers(adults_, {rome_}).ok());
  std::vector<Violation> violations = ConsistencyChecker(db_).CheckAll();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].description.find("rome"), std::string::npos);
  EXPECT_STREQ(ViolationRuleToString(violations[0].rule), "SubclassSubset");
  // Check() surfaces the first violation and the count.
  Status st = ConsistencyChecker(db_).Check();
  EXPECT_TRUE(st.IsConsistency());
  EXPECT_NE(st.message().find("violation"), std::string::npos);
}

TEST(ConsistencyRuleNameTest, AllNamed) {
  EXPECT_STREQ(ViolationRuleToString(Violation::Rule::kSchemaStructure),
               "SchemaStructure");
  EXPECT_STREQ(ViolationRuleToString(Violation::Rule::kBaseclassPartition),
               "BaseclassPartition");
  EXPECT_STREQ(ViolationRuleToString(Violation::Rule::kNamingUniqueness),
               "NamingUniqueness");
}

TEST(ConsistencyTest, MutationsPreserveConsistencyUnderStress) {
  // Every public mutation path must leave the database §2-consistent; run a
  // deterministic burst of mixed operations on the synthetic workspace.
  datasets::SyntheticParams params;
  params.entities_per_class = 30;
  params.baseclasses = 2;
  auto ws = datasets::BuildSynthetic(params);
  Database& db = ws->db();
  datasets::SyntheticHandles h = datasets::ResolveSynthetic(*ws, params);

  // Delete a third of one class's entities, re-create some, reassign.
  int i = 0;
  std::vector<EntityId> members(db.Members(h.baseclasses[0]).begin(),
                                db.Members(h.baseclasses[0]).end());
  for (EntityId e : members) {
    if (++i % 3 == 0) {
      ASSERT_TRUE(ws->DeleteEntity(e).ok());
    }
  }
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(
        db.CreateEntity(h.baseclasses[0], "fresh" + std::to_string(k)).ok());
  }
  Status st = ConsistencyChecker(db).Check();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace isis::sdm
