/// \file qbe_test.cpp
/// \brief Tests for the QBE baseline and the SDM -> relational encoder.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "rel/encode.h"
#include "rel/qbe.h"

namespace isis::rel {
namespace {

class QbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    Result<RelDatabase> encoded = EncodeDatabase(ws_->db());
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    db_ = std::move(encoded).ValueOrDie();
  }
  std::unique_ptr<query::Workspace> ws_;
  RelDatabase db_;
};

TEST_F(QbeTest, EncoderShapesRelations) {
  // Class relation: unary over entity names.
  const Relation* instruments = *db_.Find("instruments");
  EXPECT_EQ(instruments->columns(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(instruments->size(), 17u);
  // Attribute relation: (name, value) with primitive values for predefined
  // value classes.
  const Relation* size_rel = *db_.Find("music_groups_size");
  EXPECT_EQ(size_rel->arity(), 2u);
  EXPECT_TRUE(size_rel->Contains(
      {Value::String("LaBelle Quartet"), Value::Integer(4)}));
  // Multivalued attributes produce one row per element.
  const Relation* plays = *db_.Find("musicians_plays");
  EXPECT_TRUE(plays->Contains(
      {Value::String("Edith"), Value::String("viola")}));
  EXPECT_TRUE(plays->Contains(
      {Value::String("Edith"), Value::String("violin")}));
  // Derived-class relations encode current membership.
  const Relation* strings = *db_.Find("play_strings");
  EXPECT_EQ(strings->size(), 4u);
  // Naming attributes are skipped (identical to the class relation).
  EXPECT_TRUE(db_.Find("instruments_name").status().IsNotFound());
}

TEST_F(QbeTest, SingleRelationConstantQuery) {
  // P._g | size = 4   over music_groups_size.
  QbeQuery q;
  q.AddRow(QbeRow{"music_groups_size",
                  {QbeCell::Print("_g"), QbeCell::Const(Value::Integer(4))}});
  Result<Relation> answer = q.Evaluate(db_);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->size(), 2u);  // both quartets
  EXPECT_EQ(q.FilledCellCount(), 2);
}

TEST_F(QbeTest, JoinAcrossRowsViaSharedVariable) {
  // The paper's quartets query in QBE form: groups of size 4 with a member
  // who plays the piano.
  QbeQuery q;
  q.AddRow(QbeRow{"music_groups_size",
                  {QbeCell::Print("_g"), QbeCell::Const(Value::Integer(4))}});
  q.AddRow(QbeRow{"music_groups_members",
                  {QbeCell::Var("_g"), QbeCell::Var("_m")}});
  q.AddRow(QbeRow{"musicians_plays",
                  {QbeCell::Var("_m"),
                   QbeCell::Const(Value::String("piano"))}});
  Result<Relation> answer = q.Evaluate(db_);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ(answer->tuples()[0][0].str(), "LaBelle Quartet");
  EXPECT_EQ(q.FilledCellCount(), 6);
}

TEST_F(QbeTest, ComparisonOperatorsInCells) {
  QbeQuery q;
  q.AddRow(QbeRow{"music_groups_size",
                  {QbeCell::Print("_g"),
                   QbeCell::Const(Value::Integer(4), CompareOp::kGe)}});
  Result<Relation> answer = q.Evaluate(db_);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 3u);  // two quartets + the quintet
}

TEST_F(QbeTest, RepeatedVariableInOneRowForcesEquality) {
  // Musicians whose name equals an instrument they play (none).
  QbeQuery q;
  q.AddRow(QbeRow{"musicians_plays",
                  {QbeCell::Print("_x"), QbeCell::Var("_x")}});
  Result<Relation> answer = q.Evaluate(db_);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
}

TEST_F(QbeTest, BlankCellsAreUnconstrained) {
  QbeQuery q;
  q.AddRow(QbeRow{"musicians_plays",
                  {QbeCell::Print("_m"), QbeCell::Blank()}});
  Result<Relation> answer = q.Evaluate(db_);
  ASSERT_TRUE(answer.ok());
  // Every musician plays something in the dataset.
  EXPECT_EQ(answer->size(), 11u);
}

TEST_F(QbeTest, ErrorsSurface) {
  QbeQuery empty;
  EXPECT_TRUE(empty.Evaluate(db_).status().IsInvalidArgument());

  QbeQuery no_print;
  no_print.AddRow(QbeRow{"music_groups_size",
                         {QbeCell::Var("_g"),
                          QbeCell::Const(Value::Integer(4))}});
  EXPECT_TRUE(no_print.Evaluate(db_).status().IsInvalidArgument());

  QbeQuery bad_relation;
  bad_relation.AddRow(QbeRow{"ghosts", {QbeCell::Print("_x")}});
  EXPECT_TRUE(bad_relation.Evaluate(db_).status().IsNotFound());

  QbeQuery bad_arity;
  bad_arity.AddRow(QbeRow{"music_groups_size", {QbeCell::Print("_x")}});
  EXPECT_TRUE(bad_arity.Evaluate(db_).status().IsInvalidArgument());
}

TEST_F(QbeTest, QbeMatchesIsisDerivedClass) {
  // Cross-check: the QBE answer for the quartets query equals the ISIS
  // derived class's membership (the LaBelle Quartet) from the workspace.
  QbeQuery q;
  q.AddRow(QbeRow{"music_groups_size",
                  {QbeCell::Print("_g"), QbeCell::Const(Value::Integer(4))}});
  q.AddRow(QbeRow{"music_groups_members",
                  {QbeCell::Var("_g"), QbeCell::Var("_m")}});
  q.AddRow(QbeRow{"musicians_plays",
                  {QbeCell::Var("_m"),
                   QbeCell::Const(Value::String("piano"))}});
  Relation answer = *q.Evaluate(db_);

  sdm::Database& sdm_db = ws_->db();
  ClassId music_groups = *sdm_db.schema().FindClass("music_groups");
  ClassId quartets = *sdm_db.CreateSubclass("quartets", music_groups,
                                            sdm::Membership::kEnumerated);
  query::Predicate pred;
  AttributeId size = *sdm_db.schema().FindAttribute(music_groups, "size");
  AttributeId members =
      *sdm_db.schema().FindAttribute(music_groups, "members");
  AttributeId plays = *sdm_db.schema().FindAttribute(
      *sdm_db.schema().FindClass("musicians"), "plays");
  query::Atom a1;
  a1.lhs = query::Term::Candidate({size});
  a1.op = query::SetOp::kEqual;
  a1.rhs = query::Term::Constant({sdm_db.InternInteger(4)});
  query::Atom a2;
  a2.lhs = query::Term::Candidate({members, plays});
  a2.op = query::SetOp::kSuperset;
  a2.rhs = query::Term::Constant({*sdm_db.FindEntity(
      *sdm_db.schema().FindClass("instruments"), "piano")});
  pred.AddAtom(a1, 0);
  pred.AddAtom(a2, 1);
  ASSERT_TRUE(ws_->DefineSubclassMembership(quartets, pred).ok());

  ASSERT_EQ(answer.size(), sdm_db.Members(quartets).size());
  for (EntityId e : sdm_db.Members(quartets)) {
    EXPECT_TRUE(answer.Contains({Value::String(sdm_db.NameOf(e))}));
  }
}

}  // namespace
}  // namespace isis::rel
