/// \file grouping_test.cpp
/// \brief Unit + property tests for groupings-as-data: block derivation and
/// the incremental maintenance vs full recomputation equivalence.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sdm/consistency.h"
#include "sdm/database.h"

namespace isis::sdm {
namespace {

class GroupingTest : public ::testing::TestWithParam<bool> {
 protected:
  GroupingTest() : db_(MakeOptions(GetParam())) {}

  static Database::Options MakeOptions(bool incremental) {
    Database::Options o;
    o.incremental_groupings = incremental;
    return o;
  }

  void SetUp() override {
    instruments_ = *db_.CreateBaseclass("instruments", "name");
    families_ = *db_.CreateBaseclass("families", "name");
    family_ = *db_.CreateAttribute(instruments_, "family", families_, false);
    tags_ = *db_.CreateAttribute(instruments_, "tags", Schema::kStrings(),
                                 true);
    by_family_ = *db_.CreateGrouping("by_family", instruments_, family_);
    strings_ = *db_.CreateEntity(families_, "strings");
    brass_ = *db_.CreateEntity(families_, "brass");
    violin_ = *db_.CreateEntity(instruments_, "violin");
    cello_ = *db_.CreateEntity(instruments_, "cello");
    tuba_ = *db_.CreateEntity(instruments_, "tuba");
    EXPECT_TRUE(db_.SetSingle(violin_, family_, strings_).ok());
    EXPECT_TRUE(db_.SetSingle(cello_, family_, strings_).ok());
    EXPECT_TRUE(db_.SetSingle(tuba_, family_, brass_).ok());
  }

  Database db_;
  ClassId instruments_, families_;
  AttributeId family_, tags_;
  GroupingId by_family_;
  EntityId strings_, brass_, violin_, cello_, tuba_;
};

TEST_P(GroupingTest, BlocksMatchDerivation) {
  // G = { S_e | e in V }, S_e = { x | e in A(x) } (paper §2).
  const std::vector<GroupingBlock>& blocks = db_.GroupingBlocks(by_family_);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].index, strings_);  // ordered by index entity id
  EXPECT_EQ(blocks[0].members, (EntitySet{violin_, cello_}));
  EXPECT_EQ(blocks[1].index, brass_);
  EXPECT_EQ(blocks[1].members, EntitySet{tuba_});
  EXPECT_EQ(db_.GetGroupingBlock(by_family_, strings_),
            (EntitySet{violin_, cello_}));
  EXPECT_TRUE(db_.GetGroupingBlock(by_family_, EntityId(9999)).empty());
}

TEST_P(GroupingTest, NullValuedEntitiesAppearInNoBlock) {
  EntityId drum = *db_.CreateEntity(instruments_, "drum");
  (void)drum;  // family unassigned
  size_t total = 0;
  for (const GroupingBlock& b : db_.GroupingBlocks(by_family_)) {
    total += b.members.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST_P(GroupingTest, UpdateMovesEntityBetweenBlocks) {
  ASSERT_TRUE(db_.SetSingle(cello_, family_, brass_).ok());
  EXPECT_EQ(db_.GetGroupingBlock(by_family_, strings_), EntitySet{violin_});
  EXPECT_EQ(db_.GetGroupingBlock(by_family_, brass_),
            (EntitySet{cello_, tuba_}));
  EXPECT_TRUE(ConsistencyChecker(db_).Check().ok());
}

TEST_P(GroupingTest, EmptyBlocksDisappear) {
  ASSERT_TRUE(db_.SetSingle(tuba_, family_, strings_).ok());
  EXPECT_EQ(db_.GroupingBlocks(by_family_).size(), 1u);
}

TEST_P(GroupingTest, DeleteEntityLeavesBlocksConsistent) {
  // Deleting an index entity dissolves its block; deleting a member drops
  // it from its block.
  ASSERT_TRUE(db_.DeleteEntity(violin_).ok());
  EXPECT_EQ(db_.GetGroupingBlock(by_family_, strings_), EntitySet{cello_});
  ASSERT_TRUE(db_.DeleteEntity(brass_).ok());
  EXPECT_EQ(db_.GroupingBlocks(by_family_).size(), 1u);
  EXPECT_TRUE(ConsistencyChecker(db_).Check().ok());
}

TEST_P(GroupingTest, GroupingOnMultivaluedAttributeCovers) {
  // A grouping on a multivalued attribute is a cover, not a partition: an
  // entity appears in one block per value.
  GroupingId by_tag = *db_.CreateGrouping("by_tag", instruments_, tags_);
  EntityId old_tag = db_.InternString("old");
  EntityId rare = db_.InternString("rare");
  ASSERT_TRUE(db_.AddToMulti(violin_, tags_, old_tag).ok());
  ASSERT_TRUE(db_.AddToMulti(violin_, tags_, rare).ok());
  ASSERT_TRUE(db_.AddToMulti(tuba_, tags_, rare).ok());
  EXPECT_EQ(db_.GetGroupingBlock(by_tag, old_tag), EntitySet{violin_});
  EXPECT_EQ(db_.GetGroupingBlock(by_tag, rare), (EntitySet{violin_, tuba_}));
  ASSERT_TRUE(db_.RemoveFromMulti(violin_, tags_, rare).ok());
  EXPECT_EQ(db_.GetGroupingBlock(by_tag, rare), EntitySet{tuba_});
  EXPECT_TRUE(ConsistencyChecker(db_).Check().ok());
}

TEST_P(GroupingTest, GroupingOnSubclassSeesOnlySubclassMembers) {
  ClassId vintage =
      *db_.CreateSubclass("vintage", instruments_, Membership::kEnumerated);
  GroupingId g = *db_.CreateGrouping("vintage_by_family", vintage, family_);
  ASSERT_TRUE(db_.AddToClass(violin_, vintage).ok());
  EXPECT_EQ(db_.GetGroupingBlock(g, strings_), EntitySet{violin_});
  // Membership changes update the grouping.
  ASSERT_TRUE(db_.AddToClass(cello_, vintage).ok());
  EXPECT_EQ(db_.GetGroupingBlock(g, strings_), (EntitySet{violin_, cello_}));
  ASSERT_TRUE(db_.RemoveFromClass(violin_, vintage).ok());
  EXPECT_EQ(db_.GetGroupingBlock(g, strings_), EntitySet{cello_});
  EXPECT_TRUE(ConsistencyChecker(db_).Check().ok());
}

TEST_P(GroupingTest, StatsDistinguishMaintenanceStrategies) {
  (void)db_.GroupingBlocks(by_family_);  // force initial build
  std::int64_t builds_before = db_.stats().grouping_rebuilds;
  ASSERT_TRUE(db_.SetSingle(cello_, family_, brass_).ok());
  (void)db_.GroupingBlocks(by_family_);
  if (GetParam()) {
    // Incremental: no rebuild needed after the mutation.
    EXPECT_EQ(db_.stats().grouping_rebuilds, builds_before);
    EXPECT_GT(db_.stats().grouping_incremental_updates, 0);
  } else {
    EXPECT_GT(db_.stats().grouping_rebuilds, builds_before);
  }
}

TEST_P(GroupingTest, RandomMutationSequenceMatchesOracle) {
  // Property: after any mutation sequence, blocks equal the from-scratch
  // derivation (the consistency checker is the oracle).
  Rng rng(2024);
  std::vector<EntityId> insts = {violin_, cello_, tuba_};
  std::vector<EntityId> fams = {strings_, brass_, kNullEntity};
  for (int step = 0; step < 300; ++step) {
    switch (rng.Below(4)) {
      case 0: {
        EntityId x = insts[rng.Below(insts.size())];
        EXPECT_TRUE(
            db_.SetSingle(x, family_, fams[rng.Below(fams.size())]).ok());
        break;
      }
      case 1: {
        EntityId e = *db_.CreateEntity(
            instruments_, "i" + std::to_string(step));
        insts.push_back(e);
        break;
      }
      case 2: {
        if (insts.size() > 2) {
          size_t i = rng.Below(insts.size());
          EXPECT_TRUE(db_.DeleteEntity(insts[i]).ok());
          insts.erase(insts.begin() + static_cast<long>(i));
        }
        break;
      }
      case 3:
        (void)db_.GroupingBlocks(by_family_);  // interleave reads
        break;
    }
    if (step % 37 == 0) {
      Status st = ConsistencyChecker(db_).Check();
      ASSERT_TRUE(st.ok()) << "step " << step << ": " << st.ToString();
    }
  }
  EXPECT_TRUE(ConsistencyChecker(db_).Check().ok());
}

INSTANTIATE_TEST_SUITE_P(MaintenanceStrategies, GroupingTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Incremental" : "Recompute";
                         });

}  // namespace
}  // namespace isis::sdm
