/// \file server_test.cpp
/// \brief The multi-session server: wire protocol framing, session
/// isolation, reader/writer linearizability against a single-threaded
/// oracle, backpressure shedding, durable shutdown and crash recovery.
///
/// Runs under ThreadSanitizer in CI (ISIS_SANITIZE=thread) -- the
/// concurrency assertions here are what that job is for.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "query/eval.h"
#include "query/parser.h"
#include "server/loopback.h"
#include "server/net.h"
#include "server/proto.h"
#include "server/session.h"
#include "store/file.h"

namespace isis::server {
namespace {

// --- Protocol framing. ---

TEST(ProtoTest, RoundTripsFrames) {
  for (const std::string& payload :
       {std::string(""), std::string("plain"),
        std::string("fields|with|bars\nand newlines"),
        std::string("\x00\x01\xff binary", 10)}) {
    Frame in;
    in.type = MsgType::kQuery;
    in.seq = 42;
    in.payload = payload;
    std::string wire = EncodeFrame(in);
    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(wire, &out, &consumed), DecodeResult::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(ProtoTest, EveryTruncationNeedsMore) {
  Frame in;
  in.type = MsgType::kEvent;
  in.seq = 7;
  in.payload = "cmd view contents";
  std::string wire = EncodeFrame(in);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    Frame out;
    std::size_t consumed = 1;
    EXPECT_EQ(DecodeFrame(wire.substr(0, n), &out, &consumed),
              DecodeResult::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(ProtoTest, RejectsCorruptFrames) {
  Frame in;
  in.type = MsgType::kQuery;
  in.seq = 3;
  in.payload = "musicians|e.plays ]= {flute}";
  const std::string wire = EncodeFrame(in);
  Frame out;
  std::size_t consumed = 0;
  std::string error;

  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeFrame(bad_magic, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "bad magic");

  std::string bad_type = wire;
  bad_type[2] = '\x3f';  // 63: between the request and response ranges.
  EXPECT_EQ(DecodeFrame(bad_type, &out, &consumed, &error),
            DecodeResult::kError);

  std::string bad_reserved = wire;
  bad_reserved[3] = '\x01';
  EXPECT_EQ(DecodeFrame(bad_reserved, &out, &consumed, &error),
            DecodeResult::kError);

  std::string flipped_payload = wire;
  flipped_payload[kHeaderSize + 4] ^= 0x20;  // CRC must catch this.
  EXPECT_EQ(DecodeFrame(flipped_payload, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "payload checksum mismatch");

  std::string oversize = wire;
  oversize[8] = '\xff';  // payload_len low byte
  oversize[9] = '\xff';
  oversize[10] = '\xff';
  oversize[11] = '\x7f';
  EXPECT_EQ(DecodeFrame(oversize, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "payload too large");
}

TEST(ProtoTest, FrameReaderReassemblesByteByByte) {
  Frame a{MsgType::kRender, 1, ""};
  Frame b{MsgType::kQuery, 2, "musicians|e.plays ]= {inst0}"};
  std::string wire = EncodeFrame(a) + EncodeFrame(b);
  FrameReader reader;
  std::vector<Frame> decoded;
  for (char c : wire) {
    reader.Feed(&c, 1);
    Frame f;
    while (reader.Next(&f) == DecodeResult::kOk) decoded.push_back(f);
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].type, MsgType::kRender);
  EXPECT_EQ(decoded[1].payload, b.payload);
  EXPECT_EQ(reader.pending(), 0u);
}

// --- Server fixtures. ---

std::unique_ptr<Server> OpenScaled(int threads, int queue_capacity = 64,
                                   const std::string& durable_dir = "",
                                   const std::string& db_name = "") {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = queue_capacity;
  options.durable_dir = durable_dir;
  std::unique_ptr<query::Workspace> ws = datasets::BuildScaledMusic(2);
  // Durable tests run in parallel from the same temp dir; a unique name
  // keeps their WAL/checkpoint files from colliding.
  if (!db_name.empty()) ws->set_name(db_name);
  Result<std::unique_ptr<Server>> opened =
      Server::Open(std::move(ws), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

/// What the server's kQueryResult payload should be, computed
/// single-threaded: the oracle for the byte-identical comparisons.
std::string OraclePayload(const query::Workspace& ws, const std::string& cls,
                          const std::string& predicate) {
  const sdm::Database& db = ws.db();
  Result<ClassId> cr = db.schema().FindClass(cls);
  EXPECT_TRUE(cr.ok());
  ClassId c = cr.ValueOrDie();
  Result<query::Predicate> pr = query::ParsePredicate(db, c, predicate);
  EXPECT_TRUE(pr.ok());
  query::Predicate pred = std::move(pr).ValueOrDie();
  query::Evaluator ev(db);
  sdm::EntitySet result = ev.EvaluateSubclass(pred, c);
  std::vector<std::string> fields;
  fields.push_back(std::to_string(result.size()));
  for (EntityId e : result) fields.push_back(db.NameOf(e));
  return JoinFields(fields);
}

// --- Basic request flow. ---

TEST(ServerTest, HelloQueryMatchesOracle) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  EXPECT_GE(client.session_id(), 1);

  const std::string predicate = "e.plays ]= {inst0}";
  Result<Frame> resp =
      client.Call(MsgType::kQuery, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
  EXPECT_EQ(resp->payload,
            OraclePayload(srv->workspace(), "musicians", predicate));

  Result<Frame> explain =
      client.Call(MsgType::kExplain, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->type, MsgType::kExplainResult);
  EXPECT_NE(explain->payload.find("clause 1"), std::string::npos)
      << explain->payload;
  srv->Shutdown();
}

TEST(ServerTest, QueryErrorsComeBackTyped) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());

  Result<Frame> resp = client.Call(
      MsgType::kQuery, JoinFields({"no_such_class", "e.plays ]= {inst0}"}));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->payload.rfind("NotFound|", 0), 0u) << resp->payload;

  LoopbackClient stranger(srv.get());
  // No Connect: session id -1 is unknown.
  Result<Frame> unknown = stranger.Call(MsgType::kRender, "");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->type, MsgType::kError);
  srv->Shutdown();
}

TEST(ServerTest, SessionsKeepIndependentUiState) {
  ServerOptions options;
  options.threads = 4;
  Result<std::unique_ptr<Server>> opened =
      Server::Open(datasets::BuildInstrumentalMusic(), options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

  LoopbackClient a(srv.get());
  LoopbackClient b(srv.get());
  ASSERT_TRUE(a.Connect("a").ok());
  ASSERT_TRUE(b.Connect("b").ok());
  ASSERT_NE(a.session_id(), b.session_id());
  EXPECT_EQ(srv->session_count(), 2);

  // A navigates into a class; B stays at the forest.
  Result<Frame> ev =
      a.Call(MsgType::kEvent, "pick class:musicians");
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->type, MsgType::kScreen) << ev->payload;

  Result<std::string> screen_a = a.Render();
  Result<std::string> screen_b = b.Render();
  ASSERT_TRUE(screen_a.ok());
  ASSERT_TRUE(screen_b.ok());
  EXPECT_NE(*screen_a, *screen_b);
  // Both sessions see the same shared schema, though: the class A picked
  // exists on B's forest too.
  EXPECT_NE(screen_b->find("musicians"), std::string::npos);

  Result<Frame> bye = a.Call(MsgType::kBye, "");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye->type, MsgType::kOk);
  EXPECT_EQ(srv->session_count(), 1);
  srv->Shutdown();
}

// --- Concurrency. ---

/// N readers poll a query while one writer rewrites musicians' kits to
/// {inst0}; reader counts must be non-decreasing (each write only adds
/// players of inst0) and the final answer must be byte-identical to a
/// single-threaded oracle that applied the same writes.
TEST(ServerTest, ReadersSeeMonotoneCountsUnderOneWriter) {
  constexpr int kReaders = 3;
  constexpr int kWrites = 12;
  const std::string predicate = "e.plays ]= {inst0}";

  std::unique_ptr<Server> srv = OpenScaled(4);
  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      LoopbackClient client(srv.get());
      ASSERT_TRUE(client.Connect("reader").ok());
      long long last = -1;
      while (!done.load()) {
        Result<Frame> resp = client.Call(
            MsgType::kQuery, JoinFields({"musicians", predicate}));
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
        long long count = std::stoll(SplitFields(resp->payload)[0]);
        if (count < last) monotone.store(false);
        last = count;
      }
    });
  }

  LoopbackClient writer(srv.get());
  ASSERT_TRUE(writer.Connect("writer").ok());
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(writer
                    .Assign("musicians", "musician" + std::to_string(i),
                            "plays", "inst0")
                    .ok());
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(monotone.load());

  // Oracle: same writes, single-threaded, then the same query.
  std::unique_ptr<query::Workspace> oracle = datasets::BuildScaledMusic(2);
  datasets::ScaledMusicHandles h = datasets::ResolveScaledMusic(*oracle);
  sdm::Database& odb = oracle->db();
  Result<EntityId> inst0 = odb.FindMember(h.instruments, "inst0");
  ASSERT_TRUE(inst0.ok());
  for (int i = 0; i < kWrites; ++i) {
    Result<EntityId> m =
        odb.FindMember(h.musicians, "musician" + std::to_string(i));
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(odb.SetMulti(*m, h.plays, {*inst0}).ok());
  }
  Result<Frame> final_resp = writer.Call(
      MsgType::kQuery, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(final_resp.ok());
  ASSERT_EQ(final_resp->type, MsgType::kQueryResult);
  EXPECT_EQ(final_resp->payload,
            OraclePayload(*oracle, "musicians", predicate));
  srv->Shutdown();
}

/// A query whose constant was never interned runs while interning is
/// frozen; the server must transparently promote it to the exclusive lock
/// and still answer correctly.
TEST(ServerTest, PromotesReadsThatInternUnseenConstants) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());

  // No group has size 123456; the integer itself has never been seen, so a
  // frozen parse cannot intern it.
  Result<Frame> resp = client.Call(
      MsgType::kQuery, JoinFields({"music_groups", "e.size = {123456}"}));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
  EXPECT_EQ(SplitFields(resp->payload)[0], "0");
  EXPECT_GE(srv->stats().Snapshot().promotions, 1);
  srv->Shutdown();
}

TEST(ServerTest, ShedsWhenASessionQueueOverflows) {
  // One worker and a tiny queue: a flood of async requests must overflow.
  std::unique_ptr<Server> srv = OpenScaled(1, /*queue_capacity=*/2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("flood").ok());

  constexpr int kBurst = 40;
  isis::Mutex mu;
  isis::CondVar cv;
  int responded = 0;
  int retries = 0;
  int answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client
                    .CallAsync(MsgType::kQuery,
                               JoinFields({"musicians",
                                           "e.plays ]= {inst0}"}),
                               [&](const Frame& resp) {
                                 isis::MutexLock lock(mu);
                                 ++responded;
                                 if (resp.type == MsgType::kRetry) {
                                   ++retries;
                                 } else if (resp.type ==
                                            MsgType::kQueryResult) {
                                   ++answered;
                                 }
                                 cv.NotifyOne();
                               })
                    .ok());
  }
  isis::MutexLock lock(mu);
  cv.Wait(lock, [&] { return responded == kBurst; });
  EXPECT_EQ(retries + answered, kBurst);
  EXPECT_GT(retries, 0) << "queue of 2 never overflowed under a burst of "
                        << kBurst;
  EXPECT_GT(answered, 0);
  EXPECT_GE(srv->stats().Snapshot().sheds, retries);
  lock.Unlock();
  srv->Shutdown();
}

TEST(ServerTest, StatsRequestReportsCounters) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  ASSERT_TRUE(
      client.Query("musicians", "e.plays ]= {inst0}").ok());

  Result<Frame> resp = client.Call(MsgType::kStats, "");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kStatsResult);
  EXPECT_NE(resp->payload.find("\"requests\""), std::string::npos);
  EXPECT_NE(resp->payload.find("\"p95_us\""), std::string::npos);

  std::string final_line = srv->Shutdown();
  EXPECT_NE(final_line.find("\"server_stats\""), std::string::npos);
  StatsSnapshot s = srv->stats().Snapshot();
  EXPECT_GE(s.requests, 3);  // hello + query + stats
  EXPECT_GE(s.reads, 1);
  EXPECT_EQ(s.queue_depth, 0) << "shutdown must drain every queue";
}

// --- Notifications. ---

TEST(ServerTest, SubscribersSeeWritesFromOtherSessions) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient watcher(srv.get());
  LoopbackClient writer(srv.get());
  ASSERT_TRUE(watcher.Connect("watcher").ok());
  ASSERT_TRUE(writer.Connect("writer").ok());

  Result<Frame> sub =
      watcher.Call(MsgType::kSubscribe, JoinFields({"musicians"}));
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->type, MsgType::kOk);

  ASSERT_TRUE(writer.Assign("musicians", "musician0", "plays", "inst1").ok());

  Result<Frame> poll = watcher.Call(MsgType::kPoll, "");
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->type, MsgType::kOk);
  std::vector<std::string> fields = SplitFields(poll->payload);
  ASSERT_GE(fields.size(), 2u);
  EXPECT_NE(std::stoi(fields[0]), 0);
  EXPECT_NE(poll->payload.find("musician0"), std::string::npos)
      << poll->payload;

  // The writer did not subscribe: nothing pending there.
  Result<Frame> writer_poll = writer.Call(MsgType::kPoll, "");
  ASSERT_TRUE(writer_poll.ok());
  EXPECT_EQ(SplitFields(writer_poll->payload)[0], "0");
  srv->Shutdown();
}

// --- Durability. ---

std::string DurableDir() { return ::testing::TempDir(); }

void WipeDurable(const std::string& db_name) {
  store::FileEnv* env = store::FileEnv::Default();
  for (const char* suffix :
       {".server.wal", ".server.wal.tmp", ".isis", ".isis.tmp"}) {
    (void)env->Remove(DurableDir() + "/" + db_name + suffix);
  }
}

TEST(ServerTest, CleanShutdownSurvivesRestart) {
  WipeDurable("SrvClean");
  {
    std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvClean");
    LoopbackClient client(srv.get());
    ASSERT_TRUE(client.Connect("t").ok());
    ASSERT_TRUE(
        client.Assign("musicians", "musician3", "plays", "inst0").ok());
    srv->Shutdown();
  }
  // Restart with a *fresh* workspace: the durable state must win.
  std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvClean");
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst0}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician3"),
            players->end());
  srv->Shutdown();
  WipeDurable("SrvClean");
}

TEST(ServerTest, CrashRecoveryReplaysTheWal) {
  WipeDurable("SrvCrash");
  {
    std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvCrash");
    LoopbackClient client(srv.get());
    ASSERT_TRUE(client.Connect("t").ok());
    ASSERT_TRUE(
        client.Assign("musicians", "musician5", "plays", "inst0").ok());
    // UI events are durable too.
    Result<Frame> ev = client.Call(MsgType::kEvent, "pick class:musicians");
    ASSERT_TRUE(ev.ok());
    ASSERT_EQ(ev->type, MsgType::kScreen);
    // No Shutdown(): the destructor is the crash.
  }
  std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvCrash");
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst0}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician5"),
            players->end());
  srv->Shutdown();
  WipeDurable("SrvCrash");
}

// --- TCP transport. ---

TEST(ServerTest, TcpRoundTrip) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  TcpServer tcp(srv.get());
  Status st = tcp.Start(0);
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }
  {
    TcpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", tcp.port(), "tcp-test").ok());
    EXPECT_GE(client.session_id(), 1);
    Result<Frame> resp = client.Call(
        MsgType::kQuery, JoinFields({"musicians", "e.plays ]= {inst0}"}));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
    EXPECT_EQ(resp->payload,
              OraclePayload(srv->workspace(), "musicians",
                            "e.plays ]= {inst0}"));
    Result<Frame> bye = client.Call(MsgType::kBye, "");
    ASSERT_TRUE(bye.ok());
    EXPECT_EQ(bye->type, MsgType::kOk);
  }
  tcp.Stop();
  srv->Shutdown();
}

}  // namespace
}  // namespace isis::server
