/// \file server_test.cpp
/// \brief The multi-session server: wire protocol framing, session
/// isolation, reader/writer linearizability against a single-threaded
/// oracle, backpressure shedding, durable shutdown and crash recovery.
///
/// Runs under ThreadSanitizer in CI (ISIS_SANITIZE=thread) -- the
/// concurrency assertions here are what that job is for.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "query/eval.h"
#include "query/parser.h"
#include "server/faults.h"
#include "server/loopback.h"
#include "server/net.h"
#include "server/proto.h"
#include "server/retry.h"
#include "server/session.h"
#include "store/file.h"

namespace isis::server {
namespace {

// --- Protocol framing. ---

TEST(ProtoTest, RoundTripsFrames) {
  for (const std::string& payload :
       {std::string(""), std::string("plain"),
        std::string("fields|with|bars\nand newlines"),
        std::string("\x00\x01\xff binary", 10)}) {
    Frame in;
    in.type = MsgType::kQuery;
    in.seq = 42;
    in.payload = payload;
    std::string wire = EncodeFrame(in);
    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(wire, &out, &consumed), DecodeResult::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(ProtoTest, EveryTruncationNeedsMore) {
  Frame in;
  in.type = MsgType::kEvent;
  in.seq = 7;
  in.payload = "cmd view contents";
  std::string wire = EncodeFrame(in);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    Frame out;
    std::size_t consumed = 1;
    EXPECT_EQ(DecodeFrame(wire.substr(0, n), &out, &consumed),
              DecodeResult::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(ProtoTest, RejectsCorruptFrames) {
  Frame in;
  in.type = MsgType::kQuery;
  in.seq = 3;
  in.payload = "musicians|e.plays ]= {flute}";
  const std::string wire = EncodeFrame(in);
  Frame out;
  std::size_t consumed = 0;
  std::string error;

  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeFrame(bad_magic, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "bad magic");

  std::string bad_type = wire;
  bad_type[2] = '\x3f';  // 63: between the request and response ranges.
  EXPECT_EQ(DecodeFrame(bad_type, &out, &consumed, &error),
            DecodeResult::kError);

  std::string bad_flags = wire;
  bad_flags[3] = '\x80';  // A flag bit this version does not know.
  EXPECT_EQ(DecodeFrame(bad_flags, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "unknown header flags");

  std::string flipped_payload = wire;
  flipped_payload[kHeaderSize + 4] ^= 0x20;  // CRC must catch this.
  EXPECT_EQ(DecodeFrame(flipped_payload, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "payload checksum mismatch");

  std::string oversize = wire;
  oversize[8] = '\xff';  // payload_len low byte
  oversize[9] = '\xff';
  oversize[10] = '\xff';
  oversize[11] = '\x7f';
  EXPECT_EQ(DecodeFrame(oversize, &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error, "payload too large");
}

TEST(ProtoTest, RoundTripsHeaderExtensions) {
  // Every flag combination: none (a v0 frame), deadline only, write_seq
  // only, both.
  const struct {
    std::uint32_t deadline_ms;
    std::uint64_t write_seq;
  } cases[] = {{0, 0}, {1500, 0}, {0, 77}, {250, 0x1122334455667788ull}};
  for (const auto& c : cases) {
    Frame in;
    in.type = MsgType::kAssign;
    in.seq = 9;
    in.deadline_ms = c.deadline_ms;
    in.write_seq = c.write_seq;
    in.payload = "musicians|musician0|plays|inst1";
    const std::string wire = EncodeFrame(in);
    if (c.deadline_ms == 0 && c.write_seq == 0) {
      EXPECT_EQ(wire[3], '\0') << "extension-free frames stay v0 on the wire";
    }
    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(wire, &out, &consumed), DecodeResult::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(out.deadline_ms, c.deadline_ms);
    EXPECT_EQ(out.write_seq, c.write_seq);
    EXPECT_EQ(out.payload, in.payload);
    // No prefix decodes, none is mistaken for a complete frame.
    for (std::size_t n = 0; n < wire.size(); ++n) {
      std::size_t used = 1;
      EXPECT_EQ(DecodeFrame(wire.substr(0, n), &out, &used),
                DecodeResult::kNeedMore)
          << "prefix length " << n;
    }
  }
}

TEST(ProtoTest, FrameReaderReassemblesByteByByte) {
  Frame a{MsgType::kRender, 1, ""};
  Frame b{MsgType::kQuery, 2, "musicians|e.plays ]= {inst0}"};
  std::string wire = EncodeFrame(a) + EncodeFrame(b);
  FrameReader reader;
  std::vector<Frame> decoded;
  for (char c : wire) {
    reader.Feed(&c, 1);
    Frame f;
    while (reader.Next(&f) == DecodeResult::kOk) decoded.push_back(f);
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].type, MsgType::kRender);
  EXPECT_EQ(decoded[1].payload, b.payload);
  EXPECT_EQ(reader.pending(), 0u);
}

// --- Server fixtures. ---

std::unique_ptr<Server> OpenScaled(int threads, int queue_capacity = 64,
                                   const std::string& durable_dir = "",
                                   const std::string& db_name = "") {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = queue_capacity;
  options.durable_dir = durable_dir;
  std::unique_ptr<query::Workspace> ws = datasets::BuildScaledMusic(2);
  // Durable tests run in parallel from the same temp dir; a unique name
  // keeps their WAL/checkpoint files from colliding.
  if (!db_name.empty()) ws->set_name(db_name);
  Result<std::unique_ptr<Server>> opened =
      Server::Open(std::move(ws), options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

/// What the server's kQueryResult payload should be, computed
/// single-threaded: the oracle for the byte-identical comparisons.
std::string OraclePayload(const query::Workspace& ws, const std::string& cls,
                          const std::string& predicate) {
  const sdm::Database& db = ws.db();
  Result<ClassId> cr = db.schema().FindClass(cls);
  EXPECT_TRUE(cr.ok());
  ClassId c = cr.ValueOrDie();
  Result<query::Predicate> pr = query::ParsePredicate(db, c, predicate);
  EXPECT_TRUE(pr.ok());
  query::Predicate pred = std::move(pr).ValueOrDie();
  query::Evaluator ev(db);
  sdm::EntitySet result = ev.EvaluateSubclass(pred, c);
  std::vector<std::string> fields;
  fields.push_back(std::to_string(result.size()));
  for (EntityId e : result) fields.push_back(db.NameOf(e));
  return JoinFields(fields);
}

// --- Basic request flow. ---

TEST(ServerTest, HelloQueryMatchesOracle) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  EXPECT_GE(client.session_id(), 1);

  const std::string predicate = "e.plays ]= {inst0}";
  Result<Frame> resp =
      client.Call(MsgType::kQuery, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
  EXPECT_EQ(resp->payload,
            OraclePayload(srv->workspace(), "musicians", predicate));

  Result<Frame> explain =
      client.Call(MsgType::kExplain, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->type, MsgType::kExplainResult);
  EXPECT_NE(explain->payload.find("clause 1"), std::string::npos)
      << explain->payload;
  srv->Shutdown();
}

TEST(ServerTest, QueryErrorsComeBackTyped) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());

  Result<Frame> resp = client.Call(
      MsgType::kQuery, JoinFields({"no_such_class", "e.plays ]= {inst0}"}));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->payload.rfind("NotFound|", 0), 0u) << resp->payload;

  LoopbackClient stranger(srv.get());
  // No Connect: session id -1 is unknown.
  Result<Frame> unknown = stranger.Call(MsgType::kRender, "");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->type, MsgType::kError);
  srv->Shutdown();
}

TEST(ServerTest, SessionsKeepIndependentUiState) {
  ServerOptions options;
  options.threads = 4;
  Result<std::unique_ptr<Server>> opened =
      Server::Open(datasets::BuildInstrumentalMusic(), options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

  LoopbackClient a(srv.get());
  LoopbackClient b(srv.get());
  ASSERT_TRUE(a.Connect("a").ok());
  ASSERT_TRUE(b.Connect("b").ok());
  ASSERT_NE(a.session_id(), b.session_id());
  EXPECT_EQ(srv->session_count(), 2);

  // A navigates into a class; B stays at the forest.
  Result<Frame> ev =
      a.Call(MsgType::kEvent, "pick class:musicians");
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->type, MsgType::kScreen) << ev->payload;

  Result<std::string> screen_a = a.Render();
  Result<std::string> screen_b = b.Render();
  ASSERT_TRUE(screen_a.ok());
  ASSERT_TRUE(screen_b.ok());
  EXPECT_NE(*screen_a, *screen_b);
  // Both sessions see the same shared schema, though: the class A picked
  // exists on B's forest too.
  EXPECT_NE(screen_b->find("musicians"), std::string::npos);

  Result<Frame> bye = a.Call(MsgType::kBye, "");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye->type, MsgType::kOk);
  EXPECT_EQ(srv->session_count(), 1);
  srv->Shutdown();
}

// --- Concurrency. ---

/// N readers poll a query while one writer rewrites musicians' kits to
/// {inst0}; reader counts must be non-decreasing (each write only adds
/// players of inst0) and the final answer must be byte-identical to a
/// single-threaded oracle that applied the same writes.
TEST(ServerTest, ReadersSeeMonotoneCountsUnderOneWriter) {
  constexpr int kReaders = 3;
  constexpr int kWrites = 12;
  const std::string predicate = "e.plays ]= {inst0}";

  std::unique_ptr<Server> srv = OpenScaled(4);
  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      LoopbackClient client(srv.get());
      ASSERT_TRUE(client.Connect("reader").ok());
      long long last = -1;
      while (!done.load()) {
        Result<Frame> resp = client.Call(
            MsgType::kQuery, JoinFields({"musicians", predicate}));
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
        long long count = std::stoll(SplitFields(resp->payload)[0]);
        if (count < last) monotone.store(false);
        last = count;
      }
    });
  }

  LoopbackClient writer(srv.get());
  ASSERT_TRUE(writer.Connect("writer").ok());
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(writer
                    .Assign("musicians", "musician" + std::to_string(i),
                            "plays", "inst0")
                    .ok());
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(monotone.load());

  // Oracle: same writes, single-threaded, then the same query.
  std::unique_ptr<query::Workspace> oracle = datasets::BuildScaledMusic(2);
  datasets::ScaledMusicHandles h = datasets::ResolveScaledMusic(*oracle);
  sdm::Database& odb = oracle->db();
  Result<EntityId> inst0 = odb.FindMember(h.instruments, "inst0");
  ASSERT_TRUE(inst0.ok());
  for (int i = 0; i < kWrites; ++i) {
    Result<EntityId> m =
        odb.FindMember(h.musicians, "musician" + std::to_string(i));
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(odb.SetMulti(*m, h.plays, {*inst0}).ok());
  }
  Result<Frame> final_resp = writer.Call(
      MsgType::kQuery, JoinFields({"musicians", predicate}));
  ASSERT_TRUE(final_resp.ok());
  ASSERT_EQ(final_resp->type, MsgType::kQueryResult);
  EXPECT_EQ(final_resp->payload,
            OraclePayload(*oracle, "musicians", predicate));
  srv->Shutdown();
}

/// A query whose constant was never interned runs while interning is
/// frozen; the server must transparently promote it to the exclusive lock
/// and still answer correctly.
TEST(ServerTest, PromotesReadsThatInternUnseenConstants) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());

  // No group has size 123456; the integer itself has never been seen, so a
  // frozen parse cannot intern it.
  Result<Frame> resp = client.Call(
      MsgType::kQuery, JoinFields({"music_groups", "e.size = {123456}"}));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
  EXPECT_EQ(SplitFields(resp->payload)[0], "0");
  EXPECT_GE(srv->stats().Snapshot().promotions, 1);
  srv->Shutdown();
}

TEST(ServerTest, ShedsWhenASessionQueueOverflows) {
  // One worker and a tiny queue: a flood of async requests must overflow.
  std::unique_ptr<Server> srv = OpenScaled(1, /*queue_capacity=*/2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("flood").ok());

  constexpr int kBurst = 40;
  isis::Mutex mu;
  isis::CondVar cv;
  int responded = 0;
  int retries = 0;
  int answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client
                    .CallAsync(MsgType::kQuery,
                               JoinFields({"musicians",
                                           "e.plays ]= {inst0}"}),
                               [&](const Frame& resp) {
                                 isis::MutexLock lock(mu);
                                 ++responded;
                                 if (resp.type == MsgType::kRetry) {
                                   ++retries;
                                 } else if (resp.type ==
                                            MsgType::kQueryResult) {
                                   ++answered;
                                 }
                                 cv.NotifyOne();
                               })
                    .ok());
  }
  isis::MutexLock lock(mu);
  cv.Wait(lock, [&] { return responded == kBurst; });
  EXPECT_EQ(retries + answered, kBurst);
  EXPECT_GT(retries, 0) << "queue of 2 never overflowed under a burst of "
                        << kBurst;
  EXPECT_GT(answered, 0);
  EXPECT_GE(srv->stats().Snapshot().sheds, retries);
  lock.Unlock();
  srv->Shutdown();
}

TEST(ServerTest, StatsRequestReportsCounters) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  ASSERT_TRUE(
      client.Query("musicians", "e.plays ]= {inst0}").ok());

  Result<Frame> resp = client.Call(MsgType::kStats, "");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kStatsResult);
  EXPECT_NE(resp->payload.find("\"requests\""), std::string::npos);
  EXPECT_NE(resp->payload.find("\"p95_us\""), std::string::npos);

  std::string final_line = srv->Shutdown();
  EXPECT_NE(final_line.find("\"server_stats\""), std::string::npos);
  StatsSnapshot s = srv->stats().Snapshot();
  EXPECT_GE(s.requests, 3);  // hello + query + stats
  EXPECT_GE(s.reads, 1);
  EXPECT_EQ(s.queue_depth, 0) << "shutdown must drain every queue";
}

// --- Fault tolerance: deadlines, heartbeats, resume, dedup. ---

/// Blocking HandleFrame round trip for hand-built frames (the loopback
/// client cannot set header extensions).
Frame CallRaw(Server* srv, std::int64_t sid, const Frame& req) {
  isis::Mutex mu;
  isis::CondVar cv;
  bool ready = false;
  Frame result;
  srv->HandleFrame(sid, req, [&](const Frame& resp) {
    isis::MutexLock lock(mu);
    result = resp;
    ready = true;
    cv.NotifyOne();
  });
  isis::MutexLock lock(mu);
  cv.Wait(lock, [&] { return ready; });
  return result;
}

TEST(ServerTest, PingPongEchoesWithoutASession) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  Frame ping;
  ping.type = MsgType::kPing;
  ping.seq = 5;
  ping.payload = "are-you-there";
  // No hello first: liveness probes need no session.
  Frame pong = CallRaw(srv.get(), -1, ping);
  EXPECT_EQ(pong.type, MsgType::kPong);
  EXPECT_EQ(pong.seq, 5u);
  EXPECT_EQ(pong.payload, "are-you-there");
  EXPECT_EQ(srv->stats().Snapshot().heartbeats, 1);
  srv->Shutdown();
}

TEST(ServerTest, ExpiredRequestsAreDroppedBeforeDispatch) {
  // One worker and a deep queue: a burst of 1ms-deadline queries cannot all
  // be served in time, and the stragglers must come back kDeadlineExceeded
  // without ever running. The result cache stays off: with it, 299 of the
  // 300 identical queries are hash-probe hits and the queue drains inside
  // the 1ms budget -- this test needs evaluation to stay expensive.
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 512;
  options.result_cache = false;
  Result<std::unique_ptr<Server>> opened =
      Server::Open(datasets::BuildScaledMusic(2), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("deadline").ok());

  constexpr int kBurst = 300;
  isis::Mutex mu;
  isis::CondVar cv;
  int responded = 0;
  int expired = 0;
  int answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    Frame req;
    req.type = MsgType::kQuery;
    req.seq = static_cast<std::uint32_t>(i + 10);
    // A generous budget for the head of the queue (those must answer), a
    // 1ms budget for the rest (the ~30ms of queued work ahead of them
    // guarantees stragglers).
    req.deadline_ms = i < 10 ? 10000 : 1;
    req.payload = JoinFields({"musicians", "e.plays ]= {inst0}"});
    srv->HandleFrame(client.session_id(), req, [&](const Frame& resp) {
      isis::MutexLock lock(mu);
      ++responded;
      if (resp.type == MsgType::kDeadlineExceeded) ++expired;
      if (resp.type == MsgType::kQueryResult) ++answered;
      cv.NotifyOne();
    });
  }
  {
    isis::MutexLock lock(mu);
    cv.Wait(lock, [&] { return responded == kBurst; });
    EXPECT_GT(expired, 0) << "1ms deadlines all survived a " << kBurst
                          << "-deep queue on one worker";
    EXPECT_GT(answered, 0) << "the head of the queue was still in budget";
  }
  EXPECT_GE(srv->stats().Snapshot().deadline_drops, expired);
  srv->Shutdown();
}

TEST(ServerTest, ResentWritesDedupOnWriteSeq) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("dedup").ok());
  const std::int64_t sid = client.session_id();

  Frame first;
  first.type = MsgType::kAssign;
  first.seq = 100;
  first.write_seq = 7;
  first.payload = JoinFields({"musicians", "musician0", "plays", "inst1"});
  Frame resp = CallRaw(srv.get(), sid, first);
  ASSERT_EQ(resp.type, MsgType::kOk) << resp.payload;

  // A *different* mutation arriving under the same write_seq is by
  // definition a resend of the first (the client reuses the seq only on
  // resends): the cached response comes back and nothing is applied.
  Frame resend;
  resend.type = MsgType::kAssign;
  resend.seq = 101;
  resend.write_seq = 7;
  resend.payload = JoinFields({"musicians", "musician1", "plays", "inst1"});
  Frame cached = CallRaw(srv.get(), sid, resend);
  EXPECT_EQ(cached.type, MsgType::kOk);
  EXPECT_EQ(cached.seq, 101u) << "cached response must carry the new seq";
  EXPECT_EQ(srv->stats().Snapshot().dedup_hits, 1);

  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst1}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician0"),
            players->end());
  EXPECT_EQ(std::find(players->begin(), players->end(), "musician1"),
            players->end())
      << "the deduped resend must not have applied";

  // A fresh write_seq applies normally.
  Frame next;
  next.type = MsgType::kAssign;
  next.seq = 102;
  next.write_seq = 8;
  next.payload = JoinFields({"musicians", "musician1", "plays", "inst1"});
  EXPECT_EQ(CallRaw(srv.get(), sid, next).type, MsgType::kOk);
  players = client.Query("musicians", "e.plays ]= {inst1}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician1"),
            players->end());
  srv->Shutdown();
}

TEST(ServerTest, HelloWithResumeReattachesTheSession) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("resume-me").ok());
  const std::int64_t sid = client.session_id();
  ASSERT_EQ(srv->session_count(), 1);

  Frame hello;
  hello.type = MsgType::kHello;
  hello.seq = 50;
  hello.payload = JoinFields({"resume-me", std::to_string(sid)});
  Frame resp = CallRaw(srv.get(), -1, hello);
  ASSERT_EQ(resp.type, MsgType::kOk) << resp.payload;
  EXPECT_EQ(SplitFields(resp.payload)[0], std::to_string(sid));
  EXPECT_EQ(srv->session_count(), 1) << "resume must not mint a session";
  EXPECT_EQ(srv->stats().Snapshot().resumes, 1);

  // Resuming a session the server never had falls back to a fresh one.
  Frame stale;
  stale.type = MsgType::kHello;
  stale.seq = 51;
  stale.payload = JoinFields({"resume-me", "999999"});
  Frame fresh = CallRaw(srv.get(), -1, stale);
  ASSERT_EQ(fresh.type, MsgType::kOk);
  EXPECT_NE(SplitFields(fresh.payload)[0], "999999");
  EXPECT_EQ(srv->session_count(), 2);
  srv->Shutdown();
}

// --- Notifications. ---

TEST(ServerTest, SubscribersSeeWritesFromOtherSessions) {
  std::unique_ptr<Server> srv = OpenScaled(4);
  LoopbackClient watcher(srv.get());
  LoopbackClient writer(srv.get());
  ASSERT_TRUE(watcher.Connect("watcher").ok());
  ASSERT_TRUE(writer.Connect("writer").ok());

  Result<Frame> sub =
      watcher.Call(MsgType::kSubscribe, JoinFields({"musicians"}));
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->type, MsgType::kOk);

  ASSERT_TRUE(writer.Assign("musicians", "musician0", "plays", "inst1").ok());

  Result<Frame> poll = watcher.Call(MsgType::kPoll, "");
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->type, MsgType::kOk);
  std::vector<std::string> fields = SplitFields(poll->payload);
  ASSERT_GE(fields.size(), 2u);
  EXPECT_NE(std::stoi(fields[0]), 0);
  EXPECT_NE(poll->payload.find("musician0"), std::string::npos)
      << poll->payload;

  // The writer did not subscribe: nothing pending there.
  Result<Frame> writer_poll = writer.Call(MsgType::kPoll, "");
  ASSERT_TRUE(writer_poll.ok());
  EXPECT_EQ(SplitFields(writer_poll->payload)[0], "0");
  srv->Shutdown();
}

// --- Durability. ---

std::string DurableDir() { return ::testing::TempDir(); }

void WipeDurable(const std::string& db_name) {
  store::FileEnv* env = store::FileEnv::Default();
  for (const char* suffix :
       {".server.wal", ".server.wal.tmp", ".isis", ".isis.tmp"}) {
    (void)env->Remove(DurableDir() + "/" + db_name + suffix);
  }
}

TEST(ServerTest, CleanShutdownSurvivesRestart) {
  WipeDurable("SrvClean");
  {
    std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvClean");
    LoopbackClient client(srv.get());
    ASSERT_TRUE(client.Connect("t").ok());
    ASSERT_TRUE(
        client.Assign("musicians", "musician3", "plays", "inst0").ok());
    srv->Shutdown();
  }
  // Restart with a *fresh* workspace: the durable state must win.
  std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvClean");
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst0}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician3"),
            players->end());
  srv->Shutdown();
  WipeDurable("SrvClean");
}

TEST(ServerTest, CrashRecoveryReplaysTheWal) {
  WipeDurable("SrvCrash");
  {
    std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvCrash");
    LoopbackClient client(srv.get());
    ASSERT_TRUE(client.Connect("t").ok());
    ASSERT_TRUE(
        client.Assign("musicians", "musician5", "plays", "inst0").ok());
    // UI events are durable too.
    Result<Frame> ev = client.Call(MsgType::kEvent, "pick class:musicians");
    ASSERT_TRUE(ev.ok());
    ASSERT_EQ(ev->type, MsgType::kScreen);
    // No Shutdown(): the destructor is the crash.
  }
  std::unique_ptr<Server> srv = OpenScaled(2, 64, DurableDir(), "SrvCrash");
  LoopbackClient client(srv.get());
  ASSERT_TRUE(client.Connect("t").ok());
  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst0}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician5"),
            players->end());
  srv->Shutdown();
  WipeDurable("SrvCrash");
}

// --- TCP transport. ---

TEST(ServerTest, TcpRoundTrip) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  TcpServer tcp(srv.get());
  Status st = tcp.Start(0);
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }
  {
    TcpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", tcp.port(), "tcp-test").ok());
    EXPECT_GE(client.session_id(), 1);
    Result<Frame> resp = client.Call(
        MsgType::kQuery, JoinFields({"musicians", "e.plays ]= {inst0}"}));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->type, MsgType::kQueryResult) << resp->payload;
    EXPECT_EQ(resp->payload,
              OraclePayload(srv->workspace(), "musicians",
                            "e.plays ]= {inst0}"));
    Result<Frame> bye = client.Call(MsgType::kBye, "");
    ASSERT_TRUE(bye.ok());
    EXPECT_EQ(bye->type, MsgType::kOk);
  }
  tcp.Stop();
  srv->Shutdown();
}

TEST(ServerTest, IdleConnectionsAreReapedAndPingKeepsAlive) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  // Wide margins: the chatty client pings every ~75ms against a 500ms
  // timeout, so even a sanitizer-slowed round trip stays attached, while
  // the idle one sits silent for ~900ms, well past the deadline.
  TcpServerOptions topts;
  topts.idle_timeout_ms = 500;
  TcpServer tcp(srv.get(), topts);
  Status st = tcp.Start(0);
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }

  // An idle connection dies; the one that pings survives the same span.
  TcpClient idle;
  TcpClient chatty;
  ASSERT_TRUE(idle.Connect("127.0.0.1", tcp.port(), "idle").ok());
  ASSERT_TRUE(chatty.Connect("127.0.0.1", tcp.port(), "chatty").ok());
  for (int i = 0; i < 12; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(75));
    Result<Frame> pong = chatty.Call(MsgType::kPing, "kk");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong->type, MsgType::kPong);
  }
  // 900ms of silence total: well past the 500ms timeout.
  Result<Frame> dead = idle.Call(
      MsgType::kQuery, JoinFields({"musicians", "e.plays ]= {inst0}"}));
  EXPECT_FALSE(dead.ok()) << "the reaped connection still answered";
  Result<Frame> alive = chatty.Call(
      MsgType::kQuery, JoinFields({"musicians", "e.plays ]= {inst0}"}));
  EXPECT_TRUE(alive.ok()) << alive.status().ToString();
  EXPECT_GE(srv->stats().Snapshot().idle_reaps, 1);
  tcp.Stop();
  srv->Shutdown();
}

TEST(ServerTest, PeerClosesAreClassifiedCleanVsTruncated) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  TcpServer tcp(srv.get());
  Status st = tcp.Start(0);
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }

  auto dial = [&]() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(tcp.port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };
  auto wait_for = [&](auto pred) {
    for (int i = 0; i < 200 && !pred(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  };

  // Clean: a whole frame, read its response, close on the boundary. (The
  // pong must be drained first -- closing with unread data in the receive
  // buffer sends RST, not a clean FIN.)
  {
    int fd = dial();
    Frame ping;
    ping.type = MsgType::kPing;
    ping.seq = 1;
    std::string wire = EncodeFrame(ping);
    ASSERT_EQ(write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    FrameReader reader;
    Frame pong;
    for (;;) {
      char buf[256];
      ssize_t n = read(fd, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      reader.Feed(buf, static_cast<std::size_t>(n));
      if (reader.Next(&pong) == DecodeResult::kOk) break;
    }
    EXPECT_EQ(pong.type, MsgType::kPong);
    close(fd);
    EXPECT_TRUE(
        wait_for([&] { return srv->stats().Snapshot().eof_clean >= 1; }));
  }

  // Truncated: half a frame, then the sender dies.
  {
    int fd = dial();
    Frame ping;
    ping.type = MsgType::kPing;
    ping.seq = 2;
    ping.payload = "half";
    std::string wire = EncodeFrame(ping);
    ASSERT_EQ(write(fd, wire.data(), kHeaderSize / 2),
              static_cast<ssize_t>(kHeaderSize / 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    close(fd);
    EXPECT_TRUE(
        wait_for([&] { return srv->stats().Snapshot().eof_truncated >= 1; }));
  }
  tcp.Stop();
  srv->Shutdown();
}

// --- The retry layer over deterministic fault schedules. ---

RetryOptions QuickRetries() {
  RetryOptions o;
  o.max_attempts = 10;
  o.timeout_ms = 5000;
  o.base_backoff_ms = 1;
  o.max_backoff_ms = 4;
  return o;
}

TEST(RetryTest, HonorsRetryHintsWithBackoff) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::make_unique<LoopbackTransport>(srv.get(), "hints"),
      FaultSchedule{.retry_hint_first_calls = 3});
  const FaultInjectingTransport* faults = faulty.get();
  RetryingClient client(std::move(faulty), QuickRetries());
  ASSERT_TRUE(client.Connect().ok());

  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst0}");
  ASSERT_TRUE(players.ok()) << players.status().ToString();
  EXPECT_EQ(client.counters().retry_hints, 3);
  EXPECT_EQ(client.counters().retries, 3);
  EXPECT_EQ(faults->counts().retry_hints, 3);
  srv->Shutdown();
}

TEST(RetryTest, LostWriteResponseResendsAndDedupes) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::make_unique<LoopbackTransport>(srv.get(), "lost-resp"),
      FaultSchedule{.fail_first_calls = 1});
  RetryingClient client(std::move(faulty), QuickRetries());
  ASSERT_TRUE(client.Connect().ok());
  const std::int64_t sid = client.session_id();

  // First CallFrame: the server applies the assign but the response is
  // lost and the connection dies. The client must reconnect, resume the
  // session and resend -- and the server must answer from the dedup window
  // rather than apply twice.
  ASSERT_TRUE(client.Assign("musicians", "musician2", "plays", "inst1").ok());
  EXPECT_EQ(client.session_id(), sid) << "reconnect must resume, not remint";
  EXPECT_EQ(client.counters().resumed, 1);
  EXPECT_EQ(client.counters().transport_errors, 1);
  StatsSnapshot s = srv->stats().Snapshot();
  EXPECT_EQ(s.dedup_hits, 1);
  EXPECT_EQ(s.resumes, 1);

  Result<std::vector<std::string>> players =
      client.Query("musicians", "e.plays ]= {inst1}");
  ASSERT_TRUE(players.ok());
  EXPECT_NE(std::find(players->begin(), players->end(), "musician2"),
            players->end());
  srv->Shutdown();
}

TEST(RetryTest, ExhaustsAttemptsAgainstADeadTransport) {
  std::unique_ptr<Server> srv = OpenScaled(2);
  FaultSchedule schedule;
  schedule.connect_fail_prob = 1.0;  // Every dial fails.
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::make_unique<LoopbackTransport>(srv.get(), "unlucky"), schedule);
  RetryOptions opts = QuickRetries();
  opts.max_attempts = 3;
  RetryingClient client(std::move(faulty), opts);
  Status st = client.Connect();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(client.counters().attempts, 3);
  srv->Shutdown();
}

}  // namespace
}  // namespace isis::server
