#!/usr/bin/env python3
"""Project style lint for the ISIS repository.

Checks, per file:

  raw-sync       Raw standard-library synchronization primitives
                 (std::mutex, std::condition_variable, lock_guard, ...)
                 anywhere outside src/common/sync.h. Everything else must
                 go through the annotated wrappers so the Clang
                 thread-safety analysis sees every acquisition.
  value-or-die   .ValueOrDie() with no visible ok()/status() check nearby.
                 ValueOrDie aborts on error; call sites must either test
                 the Result first or route through a checked helper.
  include-path   Quoted includes that escape the source tree ("../..." or
                 absolute paths). All project includes are repo-relative
                 ("server/session.h"), matching the -I layout in CMake.
  header-guard   Headers must use the canonical guard
                 ISIS_<PATH>_<FILE>_H_ (e.g. src/server/net.h ->
                 ISIS_SERVER_NET_H_) in a matching #ifndef/#define pair.

A line may carry `// lint: allow(<check>)` to suppress one finding where
the deviation is deliberate; suppressions are expected to be rare and to
justify themselves in an adjacent comment.

Usage: tools/lint/check_style.py [--root DIR] [files...]
With no files, lints every .h/.cc/.cpp under src/, tests/, bench/ and
examples/. Exits 1 if any finding is reported.
"""

import argparse
import os
import re
import sys

# --- raw-sync -----------------------------------------------------------

# The one place raw primitives are allowed: the wrappers themselves.
SYNC_ALLOWED = {
    os.path.join("src", "common", "sync.h"),
    os.path.join("src", "common", "sync.cc"),
}

RAW_SYNC_TOKENS = [
    r"std::mutex\b",
    r"std::timed_mutex\b",
    r"std::recursive_mutex\b",
    r"std::shared_mutex\b",
    r"std::shared_timed_mutex\b",
    r"std::condition_variable\b",
    r"std::condition_variable_any\b",
    r"std::lock_guard\b",
    r"std::unique_lock\b",
    r"std::scoped_lock\b",
    r"std::shared_lock\b",
    r"#\s*include\s*<mutex>",
    r"#\s*include\s*<shared_mutex>",
    r"#\s*include\s*<condition_variable>",
]
RAW_SYNC_RE = re.compile("|".join(RAW_SYNC_TOKENS))

# --- value-or-die -------------------------------------------------------

VALUE_OR_DIE_RE = re.compile(r"\.ValueOrDie\(\)")
# Evidence that the Result was checked: an ok() test, a status propagation
# macro, or a checked-helper / test-assertion wrapper on a nearby line.
VALUE_OR_DIE_GUARDS = re.compile(
    r"\.ok\(\)|ISIS_RETURN_NOT_OK|ISIS_ASSIGN_OR_RETURN|\.status\(\)"
    r"|ASSERT_|EXPECT_|Must\(|MustGet\(|ABSL_|CHECK"
)
VALUE_OR_DIE_WINDOW = 8  # lines of context searched above the call
# result.h defines ValueOrDie and its operator* forwarding; the dataset
# builders define the checked MustGet helper the rule points callers at.
VALUE_OR_DIE_EXEMPT = {os.path.join("src", "common", "result.h")}

# --- include-path -------------------------------------------------------

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

# --- header-guard -------------------------------------------------------

IFNDEF_RE = re.compile(r"#\s*ifndef\s+(\S+)")
DEFINE_RE = re.compile(r"#\s*define\s+(\S+)")

SUPPRESS_RE = re.compile(r"//\s*lint:\s*allow\((?P<check>[a-z-]+)\)")

LINT_DIRS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".h", ".cc", ".cpp"}


def expected_guard(relpath):
    """src/server/net.h -> ISIS_SERVER_NET_H_ (tests/foo.h -> ISIS_TESTS_...)."""
    parts = relpath.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "ISIS_" + stem.upper() + "_H_"


def strip_comments_keep_lines(text):
    """Blanks out /* */ and // bodies so banned tokens in prose don't trip
    the lint, preserving line numbers. String literals are left alone:
    the banned tokens never legitimately appear in project strings."""
    out = []
    in_block = False
    for line in text.split("\n"):
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # // comments: keep any lint-suppression marker visible.
        m = re.search(r"//", line)
        suppress = SUPPRESS_RE.search(line)
        if m:
            line = line[: m.start()]
            if suppress:
                line += suppress.group(0)
        start = line.find("/*")
        while start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
            start = line.find("/*")
        out.append(line)
    return out


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, relpath, lineno, check, message, line):
        if SUPPRESS_RE.search(line) and SUPPRESS_RE.search(line).group(
            "check"
        ) == check:
            return
        self.findings.append((relpath, lineno, check, message))

    def lint_file(self, relpath):
        path = os.path.join(self.root, relpath)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as e:
            self.findings.append((relpath, 0, "io", str(e)))
            return
        lines = strip_comments_keep_lines(text)
        self.check_raw_sync(relpath, lines)
        self.check_value_or_die(relpath, lines)
        self.check_includes(relpath, lines)
        if relpath.endswith(".h"):
            self.check_header_guard(relpath, lines)

    def check_raw_sync(self, relpath, lines):
        if relpath in SYNC_ALLOWED:
            return
        for i, line in enumerate(lines, 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                self.report(
                    relpath, i, "raw-sync",
                    f"raw synchronization primitive '{m.group(0)}' -- use "
                    "the annotated wrappers in common/sync.h",
                    line)

    def check_value_or_die(self, relpath, lines):
        if relpath in VALUE_OR_DIE_EXEMPT:
            return
        for i, line in enumerate(lines, 1):
            if not VALUE_OR_DIE_RE.search(line):
                continue
            lo = max(0, i - 1 - VALUE_OR_DIE_WINDOW)
            window = lines[lo:i]
            if any(VALUE_OR_DIE_GUARDS.search(w) for w in window):
                continue
            self.report(
                relpath, i, "value-or-die",
                "ValueOrDie() with no ok()/status() check in the preceding "
                f"{VALUE_OR_DIE_WINDOW} lines -- test the Result or use a "
                "checked helper",
                line)

    def check_includes(self, relpath, lines):
        for i, line in enumerate(lines, 1):
            m = INCLUDE_RE.search(line)
            if not m:
                continue
            target = m.group(1)
            if target.startswith("/") or ".." in target.split("/"):
                self.report(
                    relpath, i, "include-path",
                    f'include path escapes the source tree: "{target}" -- '
                    "use a repo-relative path",
                    line)

    def check_header_guard(self, relpath, lines):
        want = expected_guard(relpath)
        ifndef = define = None
        ifndef_line = 0
        for i, line in enumerate(lines, 1):
            if ifndef is None:
                m = IFNDEF_RE.search(line)
                if m:
                    ifndef, ifndef_line = m.group(1), i
                continue
            m = DEFINE_RE.search(line)
            if m:
                define = m.group(1)
            break
        if ifndef is None or define != ifndef:
            self.report(
                relpath, ifndef_line or 1, "header-guard",
                f"missing or mismatched #ifndef/#define guard (want {want})",
                lines[ifndef_line - 1] if ifndef_line else "")
            return
        if ifndef != want:
            self.report(
                relpath, ifndef_line, "header-guard",
                f"guard is {ifndef}, want {want}",
                lines[ifndef_line - 1])


def collect_files(root):
    files = []
    for d in LINT_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [n for n in dirnames if not n.startswith(".")]
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in EXTENSIONS:
                    files.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels up)")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint, relative to the root")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    files = args.files or collect_files(root)
    linter = Linter(root)
    for f in files:
        linter.lint_file(os.path.normpath(f))

    for relpath, lineno, check, message in linter.findings:
        print(f"{relpath}:{lineno}: [{check}] {message}")
    if linter.findings:
        print(f"\n{len(linter.findings)} finding(s) in {len(files)} file(s).",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
