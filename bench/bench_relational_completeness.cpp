/// \file bench_relational_completeness.cpp
/// \brief Experiment C1: the §2 claim that ISIS predicates "provide the
/// full power of relational algebra".
///
/// For three representative queries (selection, join-shaped, and a
/// division-shaped superset query) this bench evaluates the ISIS derived
/// class and the equivalent relational plan / QBE template over the
/// standard encoding, asserts the answers coincide, and reports both costs
/// as the database scales.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "datasets/scaled_music.h"
#include "query/eval.h"
#include "rel/encode.h"
#include "rel/qbe.h"

namespace {

using isis::EntityId;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::query::Atom;
using isis::query::Evaluator;
using isis::query::Predicate;
using isis::query::SetOp;
using isis::query::Term;
using isis::sdm::EntitySet;

struct Fixture {
  std::unique_ptr<isis::query::Workspace> ws;
  ScaledMusicHandles h;
  isis::rel::RelDatabase rel;

  explicit Fixture(int scale) {
    ws = BuildScaledMusic(scale);
    h = ResolveScaledMusic(*ws);
    isis::Result<isis::rel::RelDatabase> encoded =
        isis::rel::EncodeDatabase(ws->db());
    if (!encoded.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   encoded.status().ToString().c_str());
      std::exit(1);
    }
    rel = std::move(encoded).ValueOrDie();
  }
};

void CheckEqual(const EntitySet& isis_answer,
                const isis::rel::Relation& rel_answer,
                const isis::query::Workspace& ws, benchmark::State* state) {
  if (isis_answer.size() != rel_answer.size()) {
    state->SkipWithError("ISIS and relational answers differ in size");
    return;
  }
  for (EntityId e : isis_answer) {
    if (!rel_answer.Contains({isis::rel::Value::String(ws.db().NameOf(e))})) {
      state->SkipWithError("ISIS answer contains an extra entity");
      return;
    }
  }
}

// --- Query 1: selection (groups with size > 3). ---

Predicate SelectionPredicate(const Fixture& f) {
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({f.h.size});
  a.op = SetOp::kGreater;
  a.rhs = Term::Constant({f.ws->db().InternInteger(3)});
  p.AddAtom(a, 0);
  return p;
}

void BM_Selection_ISIS(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  Predicate p = SelectionPredicate(f);
  Evaluator eval(f.ws->db());
  EntitySet answer;
  for (auto _ : state) {
    answer = eval.EvaluateSubclass(p, f.h.music_groups);
    benchmark::DoNotOptimize(answer.size());
  }
  isis::rel::QbeQuery q;
  q.AddRow(isis::rel::QbeRow{
      "music_groups_size",
      {isis::rel::QbeCell::Print("_g"),
       isis::rel::QbeCell::Const(isis::rel::Value::Integer(3),
                                 isis::rel::CompareOp::kGt)}});
  CheckEqual(answer, *q.Evaluate(f.rel), *f.ws, &state);
  state.counters["answer"] = static_cast<double>(answer.size());
}
BENCHMARK(BM_Selection_ISIS)->RangeMultiplier(4)->Range(1, 64);

void BM_Selection_QBE(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  isis::rel::QbeQuery q;
  q.AddRow(isis::rel::QbeRow{
      "music_groups_size",
      {isis::rel::QbeCell::Print("_g"),
       isis::rel::QbeCell::Const(isis::rel::Value::Integer(3),
                                 isis::rel::CompareOp::kGt)}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(f.rel)->size());
  }
}
BENCHMARK(BM_Selection_QBE)->RangeMultiplier(4)->Range(1, 64);

// --- Query 2: join-shaped (the paper's quartets query). ---

Predicate QuartetsPredicate(const Fixture& f, EntityId target_inst) {
  Predicate p;
  Atom a1;
  a1.lhs = Term::Candidate({f.h.size});
  a1.op = SetOp::kEqual;
  a1.rhs = Term::Constant({f.ws->db().InternInteger(4)});
  Atom a2;
  a2.lhs = Term::Candidate({f.h.members, f.h.plays});
  a2.op = SetOp::kSuperset;
  a2.rhs = Term::Constant({target_inst});
  p.AddAtom(a1, 0);
  p.AddAtom(a2, 1);
  return p;
}

void BM_Quartets_ISIS(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  EntityId inst0 = *f.ws->db().FindEntity(f.h.instruments, "inst0");
  Predicate p = QuartetsPredicate(f, inst0);
  Evaluator eval(f.ws->db());
  EntitySet answer;
  for (auto _ : state) {
    answer = eval.EvaluateSubclass(p, f.h.music_groups);
    benchmark::DoNotOptimize(answer.size());
  }
  isis::rel::QbeQuery q;
  q.AddRow(isis::rel::QbeRow{
      "music_groups_size",
      {isis::rel::QbeCell::Print("_g"),
       isis::rel::QbeCell::Const(isis::rel::Value::Integer(4))}});
  q.AddRow(isis::rel::QbeRow{"music_groups_members",
                             {isis::rel::QbeCell::Var("_g"),
                              isis::rel::QbeCell::Var("_m")}});
  q.AddRow(isis::rel::QbeRow{
      "musicians_plays",
      {isis::rel::QbeCell::Var("_m"),
       isis::rel::QbeCell::Const(isis::rel::Value::String("inst0"))}});
  CheckEqual(answer, *q.Evaluate(f.rel), *f.ws, &state);
  state.counters["answer"] = static_cast<double>(answer.size());
}
BENCHMARK(BM_Quartets_ISIS)->RangeMultiplier(4)->Range(1, 64);

void BM_Quartets_QBE(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  isis::rel::QbeQuery q;
  q.AddRow(isis::rel::QbeRow{
      "music_groups_size",
      {isis::rel::QbeCell::Print("_g"),
       isis::rel::QbeCell::Const(isis::rel::Value::Integer(4))}});
  q.AddRow(isis::rel::QbeRow{"music_groups_members",
                             {isis::rel::QbeCell::Var("_g"),
                              isis::rel::QbeCell::Var("_m")}});
  q.AddRow(isis::rel::QbeRow{
      "musicians_plays",
      {isis::rel::QbeCell::Var("_m"),
       isis::rel::QbeCell::Const(isis::rel::Value::String("inst0"))}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(f.rel)->size());
  }
}
BENCHMARK(BM_Quartets_QBE)->RangeMultiplier(4)->Range(1, 64);

// --- Query 3: relational-plan evaluation of the join (hand-written
// algebra, the "expert" baseline between ISIS and QBE). ---

void BM_Quartets_RelationalPlan(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  const isis::rel::Relation* size_rel = *f.rel.Find("music_groups_size");
  const isis::rel::Relation* members_rel =
      *f.rel.Find("music_groups_members");
  const isis::rel::Relation* plays_rel = *f.rel.Find("musicians_plays");
  for (auto _ : state) {
    // Q = pi_name(sigma_{size=4}(music_groups_size))
    auto quads = isis::rel::Project(
        *isis::rel::Select(*size_rel,
                           {isis::rel::Condition::WithConst(
                               1, isis::rel::CompareOp::kEq,
                               isis::rel::Value::Integer(4))}),
        {"name"});
    // P = musicians playing inst0, renamed to join on the members column.
    auto players = isis::rel::Rename(
        *isis::rel::Project(
            *isis::rel::Select(*plays_rel,
                               {isis::rel::Condition::WithConst(
                                   1, isis::rel::CompareOp::kEq,
                                   isis::rel::Value::String("inst0"))}),
            {"name"}),
        {{"name", "members"}});
    // Groups with such a member, intersected with the quartets.
    auto with_player =
        isis::rel::Project(*isis::rel::NaturalJoin(*members_rel, *players),
                           {"name"});
    benchmark::DoNotOptimize(
        isis::rel::Intersect(*quads, *with_player)->size());
  }
}
BENCHMARK(BM_Quartets_RelationalPlan)->RangeMultiplier(4)->Range(1, 64);

}  // namespace

BENCHMARK_MAIN();
