/// \file bench_figures.cpp
/// \brief Experiments F1-F12: regenerates every figure of the paper.
///
/// On startup (before the timing loops) the harness replays the §4.2
/// session and prints each figure's screen — the reproduction artifact —
/// then benchmarks, per figure, the cost of replaying the session prefix
/// from scratch and rendering the screen. Run with --print-figures to dump
/// only the screens.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "datasets/instrumental_music.h"
#include "datasets/session_script.h"
#include "ui/controller.h"

namespace {

using isis::datasets::BuildInstrumentalMusic;
using isis::datasets::PaperSessionFigures;
using isis::ui::SessionController;

void PrintFigures() {
  SessionController session(BuildInstrumentalMusic());
  for (const auto& fig : PaperSessionFigures()) {
    isis::Status st = session.RunScript(fig.script);
    if (!st.ok()) {
      std::fprintf(stderr, "replay failed at %s: %s\n", fig.name.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    std::printf("--- %s: %s ---\n%s\n", fig.name.c_str(), fig.caption.c_str(),
                session.Render().canvas.ToString().c_str());
  }
}

/// Replays the session from scratch through figure `n` and renders it.
void BM_FigureReplay(benchmark::State& state) {
  const auto& figs = PaperSessionFigures();
  int n = static_cast<int>(state.range(0));
  std::string prefix;
  for (int i = 0; i < n; ++i) prefix += figs[i].script;
  std::int64_t events = 0;
  for (auto _ : state) {
    SessionController session(BuildInstrumentalMusic());
    isis::Status st = session.RunScript(prefix);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const isis::ui::Screen& screen = session.Render();
    benchmark::DoNotOptimize(screen.canvas.At(0, 0));
    ++events;
  }
  state.SetLabel(figs[n - 1].name);
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_FigureReplay)->DenseRange(1, 12, 1)->Unit(benchmark::kMicrosecond);

/// The full session including save + stop.
void BM_FullPaperSession(benchmark::State& state) {
  std::string script;
  for (const auto& fig : PaperSessionFigures()) script += fig.script;
  for (auto _ : state) {
    SessionController session(BuildInstrumentalMusic());
    isis::Status st = session.RunScript(script);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(session.Render().hits.size());
  }
}
BENCHMARK(BM_FullPaperSession)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool figures_only =
      argc > 1 && std::strcmp(argv[1], "--print-figures") == 0;
  PrintFigures();
  if (figures_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
