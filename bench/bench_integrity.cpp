/// \file bench_integrity.cpp
/// \brief Experiment C2: the paper claims its integrity notion "represents
/// a reasonable requirement we impose on the system at low computational
/// cost".
///
/// We quantify both enforcement regimes: (a) the engine's per-mutation
/// guards (what ISIS actually pays on every insert/assign) and (b) the full
/// from-scratch revalidation by the ConsistencyChecker (what a system
/// without incremental enforcement would pay), as the database grows.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common/rng.h"
#include "datasets/scaled_music.h"
#include "sdm/consistency.h"

namespace {

using isis::ClassId;
using isis::EntityId;
using isis::Rng;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::sdm::ConsistencyChecker;
using isis::sdm::Database;

/// Full §2 revalidation vs database size.
void BM_FullConsistencyCheck(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ConsistencyChecker checker(ws->db());
  for (auto _ : state) {
    isis::Status st = checker.Check();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["entities"] =
      static_cast<double>(ws->db().AllEntities().size());
}
BENCHMARK(BM_FullConsistencyCheck)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

/// Guarded mutation cost: what each SetSingle pays for the §2 checks
/// (membership of owner, membership of value, grouping upkeep).
void BM_GuardedSetSingle(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();
  std::vector<EntityId> insts(db.Members(h.instruments).begin(),
                              db.Members(h.instruments).end());
  std::vector<EntityId> fams(db.Members(h.families).begin(),
                             db.Members(h.families).end());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SetSingle(insts[rng.Below(insts.size())], h.family,
                     fams[rng.Below(fams.size())])
            .ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedSetSingle)->RangeMultiplier(4)->Range(1, 256);

/// Guarded membership insertion (propagates up the ancestor chain).
void BM_GuardedAddToClass(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();
  isis::Result<ClassId> made = db.CreateSubclass(
      "bench_sub", h.musicians, isis::sdm::Membership::kEnumerated);
  if (!made.ok()) std::abort();
  ClassId sub = made.ValueOrDie();
  std::vector<EntityId> pool(db.Members(h.musicians).begin(),
                             db.Members(h.musicians).end());
  Rng rng(4);
  for (auto _ : state) {
    EntityId e = pool[rng.Below(pool.size())];
    benchmark::DoNotOptimize(db.AddToClass(e, sub).ok());
    state.PauseTiming();
    benchmark::DoNotOptimize(db.RemoveFromClass(e, sub).ok());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_GuardedAddToClass)->RangeMultiplier(4)->Range(1, 64);

/// Rejected mutations are also cheap: the violating call must fail fast.
void BM_RejectedMutation(benchmark::State& state) {
  auto ws = BuildScaledMusic(16);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();
  EntityId musician = *db.Members(h.musicians).begin();
  EntityId group = *db.Members(h.music_groups).begin();
  for (auto _ : state) {
    // A musician is not a member of the families value class.
    isis::Status st = db.SetSingle(group, h.size, musician);
    benchmark::DoNotOptimize(st.ok());
    if (st.ok()) state.SkipWithError("violation was accepted");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RejectedMutation);

/// Stored integrity constraints (the §5 extension): checking a
/// manager-rule-style constraint over a growing class.
void BM_ConstraintCheck(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  // "every music group has at least 2 members": e.size > 1.
  isis::query::Predicate p;
  isis::query::Atom a;
  a.lhs = isis::query::Term::Candidate({h.size});
  a.op = isis::query::SetOp::kGreater;
  a.rhs = isis::query::Term::Constant({ws->db().InternInteger(1)});
  p.AddAtom(a, 0);
  if (!ws->DefineConstraint("at_least_duo", h.music_groups, p).ok()) {
    state.SkipWithError("define failed");
  }
  for (auto _ : state) {
    isis::Status st = ws->EnforceConstraints();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["members"] =
      static_cast<double>(ws->db().Members(h.music_groups).size());
}
BENCHMARK(BM_ConstraintCheck)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
