/// \file bench_groupings.cpp
/// \brief Experiment A1 (ablation): incremental grouping maintenance vs
/// recompute-on-read.
///
/// The paper requires groupings to be "completely determined from the
/// parent class and an attribute"; the engine can keep the blocks fresh
/// incrementally on every mutation or rebuild lazily at each read after a
/// change. The crossover depends on the read/write mix, which this bench
/// sweeps: write-heavy workloads favour lazy recomputation, browse-heavy
/// workloads (the ISIS norm — every data-level render reads the blocks)
/// favour incremental maintenance.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datasets/scaled_music.h"

namespace {

using isis::EntityId;
using isis::Rng;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::sdm::Database;

/// args: (scale, reads_per_write, incremental 0/1)
void BM_GroupingMix(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  int reads_per_write = static_cast<int>(state.range(1));
  bool incremental = state.range(2) != 0;

  Database::Options opts;
  opts.incremental_groupings = incremental;
  auto ws = BuildScaledMusic(scale, /*seed=*/7, opts);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();

  std::vector<EntityId> insts(db.Members(h.instruments).begin(),
                              db.Members(h.instruments).end());
  std::vector<EntityId> fams(db.Members(h.families).begin(),
                             db.Members(h.families).end());
  Rng rng(99);
  (void)db.GroupingBlocks(h.by_family);  // warm build

  std::int64_t ops = 0;
  for (auto _ : state) {
    EntityId x = insts[rng.Below(insts.size())];
    EntityId f = fams[rng.Below(fams.size())];
    benchmark::DoNotOptimize(db.SetSingle(x, h.family, f).ok());
    ++ops;
    for (int r = 0; r < reads_per_write; ++r) {
      benchmark::DoNotOptimize(db.GroupingBlocks(h.by_family).size());
      ++ops;
    }
  }
  state.SetItemsProcessed(ops);
  state.counters["rebuilds"] =
      static_cast<double>(db.stats().grouping_rebuilds);
  state.counters["incr_updates"] =
      static_cast<double>(db.stats().grouping_incremental_updates);
  state.SetLabel(std::string(incremental ? "incremental" : "recompute") +
                 " reads/write=" + std::to_string(reads_per_write));
}
BENCHMARK(BM_GroupingMix)
    ->ArgsProduct({{8, 64}, {0, 1, 16}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Cold rebuild cost vs class size (the lazy path's unit of work).
void BM_GroupingRebuild(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  Database::Options opts;
  opts.incremental_groupings = false;
  auto ws = BuildScaledMusic(scale, /*seed=*/7, opts);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();
  std::vector<EntityId> insts(db.Members(h.instruments).begin(),
                              db.Members(h.instruments).end());
  std::vector<EntityId> fams(db.Members(h.families).begin(),
                             db.Members(h.families).end());
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    // Dirty the cache with one write.
    benchmark::DoNotOptimize(
        db.SetSingle(insts[rng.Below(insts.size())], h.family,
                     fams[rng.Below(fams.size())])
            .ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.GroupingBlocks(h.by_family).size());
  }
  state.counters["members"] =
      static_cast<double>(db.Members(h.instruments).size());
}
BENCHMARK(BM_GroupingRebuild)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

/// Incremental update cost per mutation (independent of class size — the
/// ablation's headline).
void BM_GroupingIncrementalUpdate(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Database& db = ws->db();
  std::vector<EntityId> insts(db.Members(h.instruments).begin(),
                              db.Members(h.instruments).end());
  std::vector<EntityId> fams(db.Members(h.families).begin(),
                             db.Members(h.families).end());
  Rng rng(5);
  (void)db.GroupingBlocks(h.by_family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SetSingle(insts[rng.Below(insts.size())], h.family,
                     fams[rng.Below(fams.size())])
            .ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupingIncrementalUpdate)->RangeMultiplier(4)->Range(1, 256);

}  // namespace

BENCHMARK_MAIN();
