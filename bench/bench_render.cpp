/// \file bench_render.cpp
/// \brief Experiment A3b: view rendering cost for each of the four views as
/// the schema/data grows — the per-interaction latency of the interface.

#include <benchmark/benchmark.h>

#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "datasets/synthetic.h"
#include "ui/views.h"

namespace {

using isis::AttributeId;
using isis::ClassId;
using isis::datasets::BuildScaledMusic;
using isis::datasets::BuildSynthetic;
using isis::datasets::SyntheticParams;
using isis::ui::DataPage;
using isis::ui::Level;
using isis::ui::RenderContext;
using isis::ui::SessionState;

/// Forest view over a schema with `range` baseclass trees.
void BM_RenderForest(benchmark::State& state) {
  SyntheticParams params;
  params.baseclasses = static_cast<int>(state.range(0));
  params.subclass_depth = 3;
  params.entities_per_class = 10;
  auto ws = BuildSynthetic(params);
  SessionState st;
  st.selection = isis::ui::SchemaSelection::Class(
      *ws->db().schema().FindClass("B0"));
  RenderContext ctx{*ws, st, ""};
  for (auto _ : state) {
    isis::ui::Screen screen = RenderForestView(ctx);
    benchmark::DoNotOptimize(screen.hits.size());
  }
  state.counters["classes"] =
      static_cast<double>(ws->db().schema().AllClasses().size());
}
BENCHMARK(BM_RenderForest)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMicrosecond);

/// Semantic network of a class with `range` attributes.
void BM_RenderNetwork(benchmark::State& state) {
  SyntheticParams params;
  params.attributes_per_class = static_cast<int>(state.range(0));
  params.entities_per_class = 10;
  auto ws = BuildSynthetic(params);
  SessionState st;
  st.level = Level::kSemanticNetwork;
  st.selection = isis::ui::SchemaSelection::Class(
      *ws->db().schema().FindClass("B0"));
  RenderContext ctx{*ws, st, ""};
  for (auto _ : state) {
    isis::ui::Screen screen = RenderNetworkView(ctx);
    benchmark::DoNotOptimize(screen.hits.size());
  }
}
BENCHMARK(BM_RenderNetwork)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMicrosecond);

/// Data level with a stack of `range` pages.
void BM_RenderDataPages(benchmark::State& state) {
  auto ws = BuildScaledMusic(16);
  const isis::sdm::Schema& s = ws->db().schema();
  SessionState st;
  st.level = Level::kDataLevel;
  ClassId musicians = *s.FindClass("musicians");
  ClassId instruments = *s.FindClass("instruments");
  AttributeId plays = *s.FindAttribute(musicians, "plays");
  for (int i = 0; i < state.range(0); ++i) {
    DataPage page;
    page.cls = (i % 2 == 0) ? musicians : instruments;
    page.followed = (i % 2 == 0) ? plays : isis::AttributeId();
    page.selected = ws->db().Members(page.cls);
    st.pages.push_back(page);
  }
  RenderContext ctx{*ws, st, ""};
  for (auto _ : state) {
    isis::ui::Screen screen = RenderDataView(ctx);
    benchmark::DoNotOptimize(screen.hits.size());
  }
}
BENCHMARK(BM_RenderDataPages)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMicrosecond);

/// The worksheet with a full predicate on display.
void BM_RenderWorksheet(benchmark::State& state) {
  auto ws = isis::datasets::BuildInstrumentalMusic();
  const isis::sdm::Schema& s = ws->db().schema();
  SessionState st;
  st.level = Level::kPredicateWorksheet;
  st.worksheet.target = isis::ui::WorksheetState::Target::kMembership;
  st.worksheet.target_class = *s.FindClass("play_strings");
  // Give it the stored predicate to render.
  st.worksheet.pred = *ws->SubclassPredicate(*s.FindClass("play_strings"));
  st.worksheet.current_atom = 0;
  RenderContext ctx{*ws, st, ""};
  for (auto _ : state) {
    isis::ui::Screen screen = RenderWorksheetView(ctx);
    benchmark::DoNotOptimize(screen.hits.size());
  }
}
BENCHMARK(BM_RenderWorksheet)->Unit(benchmark::kMicrosecond);

/// Screenshot serialization (what tests and figure dumps pay).
void BM_CanvasToString(benchmark::State& state) {
  auto ws = isis::datasets::BuildInstrumentalMusic();
  SessionState st;
  RenderContext ctx{*ws, st, ""};
  isis::ui::Screen screen = RenderForestView(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(screen.canvas.ToString().size());
  }
}
BENCHMARK(BM_CanvasToString);

}  // namespace

BENCHMARK_MAIN();
