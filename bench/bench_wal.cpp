/// \file bench_wal.cpp
/// \brief WAL write-path microbenchmarks: what a commit costs per sync
/// policy, and what batching the frames buys.
///
/// Two sweeps against a real on-disk log in /tmp (so the fsync numbers are
/// the filesystem's, not a mock's):
///
///   1. `wal_append_batch` -- single-threaded WalWriter::AppendBatch at
///      batch sizes 1/8/64/256. Every batch is one buffered write + one
///      fsync, so records/sec scales with the batch size until the frame
///      serialization itself dominates. Batch size 1 is the legacy
///      Append() cost: the floor the group committer lifts.
///
///   2. `wal_commit` -- T committer threads (T in 1/4/8) each running
///      `Commit(type, payload)` loops through one shared GroupCommitter,
///      per policy (per_commit/group/none). Under per_commit every record
///      fsyncs; under group concurrent committers form leader/follower
///      batches and records/sec rises with T while syncs_per_record falls
///      below 1; none is the no-durability ceiling. This is the executor's
///      write path with the server stripped away: pure committer
///      mechanics.
///
/// One JSON line per configuration, bench_predicates-style:
///
///   {"name":"wal_append_batch","batch":64,"records":4096,
///    "records_per_sec":...,"syncs":...,"us_per_record":...}
///   {"name":"wal_commit","policy":"group","threads":4,"records":1000,
///    "records_per_sec":...,"syncs":...,"syncs_per_record":...,
///    "max_group":...,"queue_waits":...}
///
/// A custom main (not Google Benchmark): each configuration runs once over
/// a fixed record count -- fsync costs are stable enough that the JSON
/// contract matters more than statistical repetition.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/file.h"
#include "store/group_commit.h"
#include "store/wal.h"

namespace {

using Clock = std::chrono::steady_clock;
using isis::Result;
using isis::store::FileEnv;
using isis::store::GroupCommitter;
using isis::store::WalRecord;
using isis::store::WalSyncPolicy;
using isis::store::WalSyncPolicyName;
using isis::store::WalWriter;

const char* const kWalPath = "/tmp/bench_wal.wal";

double Seconds(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - t0)
      .count();
}

/// A fresh single-record log (the `base` checkpoint every real WAL starts
/// with), ready for appends.
std::unique_ptr<WalWriter> FreshWal() {
  FileEnv* env = FileEnv::Default();
  (void)env->Remove(kWalPath);
  (void)env->Remove(std::string(kWalPath) + ".tmp");
  Result<std::unique_ptr<WalWriter>> w = WalWriter::CreateWithRecords(
      kWalPath, env, {{"base", "bench checkpoint"}});
  if (!w.ok()) std::abort();
  return std::move(w).ValueOrDie();
}

/// Sweep 1: AppendBatch at growing batch sizes, constant total records.
void BenchAppendBatch() {
  constexpr int kTotalRecords = 4096;
  for (int batch : {1, 8, 64, 256}) {
    std::unique_ptr<WalWriter> wal = FreshWal();
    std::vector<WalRecord> records(
        static_cast<std::size_t>(batch),
        WalRecord{"sevent", "7|assign musician3 plays inst1"});
    const int batches = kTotalRecords / batch;
    auto t0 = Clock::now();
    for (int b = 0; b < batches; ++b) {
      if (!wal->AppendBatch(records).ok()) std::abort();
    }
    const double secs = Seconds(t0);
    const int total = batches * batch;
    std::printf(
        "{\"name\":\"wal_append_batch\",\"batch\":%d,\"records\":%d,"
        "\"records_per_sec\":%.0f,\"syncs\":%d,\"us_per_record\":%.2f}\n",
        batch, total, total / secs, batches, secs * 1e6 / total);
    std::fflush(stdout);
  }
}

/// Sweep 2: concurrent Commit() loops through one GroupCommitter.
void BenchGroupCommit() {
  constexpr int kCommitsPerThread = 250;
  for (WalSyncPolicy policy :
       {WalSyncPolicy::kPerCommit, WalSyncPolicy::kGroup,
        WalSyncPolicy::kNone}) {
    for (int threads : {1, 4, 8}) {
      std::unique_ptr<WalWriter> wal = FreshWal();
      GroupCommitter::Options options;
      options.policy = policy;
      GroupCommitter committer(wal.get(), options);

      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(threads));
      auto t0 = Clock::now();
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&committer, t] {
          for (int i = 0; i < kCommitsPerThread; ++i) {
            if (!committer
                     .Commit("sevent", std::to_string(t) + "|op" +
                                           std::to_string(i))
                     .ok()) {
              std::abort();
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double secs = Seconds(t0);

      const GroupCommitter::Counters c = committer.counters();
      const int total = threads * kCommitsPerThread;
      std::printf(
          "{\"name\":\"wal_commit\",\"policy\":\"%s\",\"threads\":%d,"
          "\"records\":%d,\"records_per_sec\":%.0f,\"syncs\":%lld,"
          "\"syncs_per_record\":%.3f,\"max_group\":%lld,"
          "\"queue_waits\":%lld}\n",
          WalSyncPolicyName(policy), threads, total, total / secs,
          static_cast<long long>(c.syncs),
          static_cast<double>(c.syncs) / total,
          static_cast<long long>(c.max_group),
          static_cast<long long>(c.queue_waits));
      std::fflush(stdout);
    }
  }
  (void)FileEnv::Default()->Remove(kWalPath);
}

}  // namespace

int main() {
  BenchAppendBatch();
  BenchGroupCommit();
  return 0;
}
