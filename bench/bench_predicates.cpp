/// \file bench_predicates.cpp
/// \brief Planned vs naive predicate evaluation on scaled_music.
///
/// Times the same predicate through the index-aware planner (the default
/// Evaluator path: value-index probes, selectivity-ordered clauses, term
/// memo) and through the naive per-entity scan (planner and grouping fast
/// path disabled), and emits one machine-readable JSON line per
/// (op, scale), in the bench_store format:
///
///   {"name":"predicate_planner","op":"equality_single","scale":64,
///    "result_size":...,"probes":...,"prefiltered":...,"scanned":...,
///    "planned_ns":...,"naive_ns":...,"speedup":...}
///
/// ops:
///   equality_single    e.family = {f}          singlevalued equality probe
///   membership_multi   e.plays )= {i}          inverted-index membership
///   weakmatch_multi    e.plays ~ {i1,i2}       union of two probe blocks
///   conjunctive_mixed  (e.plays ~ {i1,i2}) and not (e.union = {true})
///                      probe prefilter + residual scan of survivors
///                      (the negated conjunct is not probe-eligible)
///   disjunctive_probe  (e.family = {f1}) or (e.family = {f2})
///                      both disjuncts answered set-at-a-time
///
/// `probes` counts value-index probes issued per planned run,
/// `prefiltered`/`scanned` are the planner's own stage counters. Both
/// paths' results are compared every iteration; a mismatch aborts. A
/// custom main (not Google Benchmark): the JSON-lines contract is the
/// point, and one process run doubles as the CI smoke test.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "datasets/scaled_music.h"
#include "query/eval.h"
#include "query/plan.h"

namespace {

using Clock = std::chrono::steady_clock;
using isis::ClassId;
using isis::EntityId;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::query::Atom;
using isis::query::Evaluator;
using isis::query::NormalForm;
using isis::query::PlannedPredicate;
using isis::query::Predicate;
using isis::query::SetOp;
using isis::query::Term;
using isis::sdm::Database;
using isis::sdm::EntitySet;

double NsSince(Clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void RunCase(const char* op, const Database& db, const Predicate& pred,
             ClassId v, int scale, int iters) {
  Evaluator planned(db);
  Evaluator naive(db);
  naive.set_use_planner(false);
  naive.set_use_grouping_index(false);

  // Warm both paths once: builds the value indexes outside the timed loop
  // (they are maintained incrementally from then on) and checks agreement.
  EntitySet want = naive.EvaluateSubclass(pred, v);
  if (planned.EvaluateSubclass(pred, v) != want) std::abort();

  const std::int64_t probes_before = db.stats().value_index_probes;
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (planned.EvaluateSubclass(pred, v).size() != want.size()) std::abort();
  }
  const double planned_ns = NsSince(t0) / iters;
  const long long probes = static_cast<long long>(
      (db.stats().value_index_probes - probes_before) / iters);

  t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (naive.EvaluateSubclass(pred, v).size() != want.size()) std::abort();
  }
  const double naive_ns = NsSince(t0) / iters;

  // Stage counters from one instrumented run.
  PlannedPredicate plan(db, pred, v);
  if (plan.Evaluate(db.Members(v)) != want) std::abort();

  std::printf(
      "{\"name\":\"predicate_planner\",\"op\":\"%s\",\"scale\":%d,"
      "\"result_size\":%lld,\"probes\":%lld,\"prefiltered\":%lld,"
      "\"scanned\":%lld,\"planned_ns\":%.0f,\"naive_ns\":%.0f,"
      "\"speedup\":%.2f}\n",
      op, scale, static_cast<long long>(want.size()), probes,
      static_cast<long long>(plan.stats().after_prefilter),
      static_cast<long long>(plan.stats().scanned), planned_ns, naive_ns,
      naive_ns / planned_ns);
  std::fflush(stdout);
}

Predicate OneAtom(Atom a, NormalForm form = NormalForm::kConjunctive) {
  Predicate p;
  p.form = form;
  p.AddAtom(std::move(a), 0);
  return p;
}

void RunScale(int scale) {
  auto ws = isis::datasets::BuildScaledMusic(scale, /*seed=*/7);
  const Database& db = ws->db();
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  const int iters = scale <= 64 ? 50 : 10;

  std::vector<EntityId> families(db.Members(h.families).begin(),
                                 db.Members(h.families).end());
  std::vector<EntityId> instruments(db.Members(h.instruments).begin(),
                                    db.Members(h.instruments).end());

  {
    Atom a;
    a.lhs = Term::Candidate({h.family});
    a.op = SetOp::kEqual;
    a.rhs = Term::Constant({families[0]});
    RunCase("equality_single", db, OneAtom(a), h.instruments, scale, iters);
  }
  {
    Atom a;
    a.lhs = Term::Candidate({h.plays});
    a.op = SetOp::kSuperset;
    a.rhs = Term::Constant({instruments[0]});
    RunCase("membership_multi", db, OneAtom(a), h.musicians, scale, iters);
  }
  {
    Atom a;
    a.lhs = Term::Candidate({h.plays});
    a.op = SetOp::kWeakMatch;
    a.rhs = Term::Constant({instruments[0], instruments[1]});
    RunCase("weakmatch_multi", db, OneAtom(a), h.musicians, scale, iters);
  }
  {
    Predicate p;
    Atom probe;
    probe.lhs = Term::Candidate({h.plays});
    probe.op = SetOp::kWeakMatch;
    probe.rhs = Term::Constant({instruments[0], instruments[1]});
    p.AddAtom(probe, 0);
    Atom scan;
    scan.lhs = Term::Candidate({h.union_attr});
    scan.op = SetOp::kEqual;
    scan.negated = true;
    scan.rhs = Term::Constant({db.InternBoolean(true)});
    p.AddAtom(scan, 1);
    RunCase("conjunctive_mixed", db, p, h.musicians, scale, iters);
  }
  {
    Predicate p;
    p.form = NormalForm::kDisjunctive;
    Atom f1;
    f1.lhs = Term::Candidate({h.family});
    f1.op = SetOp::kEqual;
    f1.rhs = Term::Constant({families[0]});
    p.AddAtom(f1, 0);
    Atom f2;
    f2.lhs = Term::Candidate({h.family});
    f2.op = SetOp::kEqual;
    f2.rhs = Term::Constant({families[1]});
    p.AddAtom(f2, 1);
    RunCase("disjunctive_probe", db, p, h.instruments, scale, iters);
  }
}

}  // namespace

int main() {
  for (int scale : {16, 64, 256}) RunScale(scale);
  return 0;
}
