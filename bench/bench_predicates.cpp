/// \file bench_predicates.cpp
/// \brief Experiment A2: predicate evaluation scaling.
///
/// Sweeps the three cost drivers of the worksheet's commit: candidate-class
/// size, number of clauses, and map length, on the scaled music database.

#include <benchmark/benchmark.h>

#include "datasets/scaled_music.h"
#include "query/eval.h"

namespace {

using isis::AttributeId;
using isis::ClassId;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::query::Atom;
using isis::query::Evaluator;
using isis::query::NormalForm;
using isis::query::Predicate;
using isis::query::SetOp;
using isis::query::Term;
using isis::query::Workspace;

/// Entities scanned vs scale: one-atom selection (size > 3) over groups.
void BM_Selection_Scale(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({h.size});
  a.op = SetOp::kGreater;
  a.rhs = Term::Constant({ws->db().InternInteger(3)});
  p.AddAtom(a, 0);
  Evaluator eval(ws->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluateSubclass(p, h.music_groups));
  }
  state.counters["candidates"] =
      static_cast<double>(ws->db().Members(h.music_groups).size());
  state.SetItemsProcessed(state.iterations() *
                          ws->db().Members(h.music_groups).size());
}
BENCHMARK(BM_Selection_Scale)->RangeMultiplier(4)->Range(1, 256);

/// Map length 1..3 at fixed scale: e.members / e.members.plays /
/// e.members.plays.family.
void BM_MapLength(benchmark::State& state) {
  auto ws = BuildScaledMusic(32);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  int len = static_cast<int>(state.range(0));
  std::vector<AttributeId> path;
  if (len >= 1) path.push_back(h.members);
  if (len >= 2) path.push_back(h.plays);
  if (len >= 3) path.push_back(h.family);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate(path);
  a.op = SetOp::kWeakMatch;
  // A one-entity constant from the map's terminal class, so the rhs cost is
  // identical across path lengths and only the map is measured.
  ClassId tip = len >= 3 ? h.families
                         : (len >= 2 ? h.instruments : h.musicians);
  a.rhs = Term::Constant({*ws->db().Members(tip).begin()});
  p.AddAtom(a, 0);
  Evaluator eval(ws->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluateSubclass(p, h.music_groups));
  }
  state.SetItemsProcessed(state.iterations() *
                          ws->db().Members(h.music_groups).size());
}
BENCHMARK(BM_MapLength)->DenseRange(1, 3, 1);

/// Clause count sweep (CNF), each clause a distinct size test.
void BM_ClauseCount(benchmark::State& state) {
  auto ws = BuildScaledMusic(32);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  int clauses = static_cast<int>(state.range(0));
  Predicate p;
  for (int c = 0; c < clauses; ++c) {
    Atom a;
    a.lhs = Term::Candidate({h.size});
    a.op = SetOp::kGreater;
    a.rhs = Term::Constant({ws->db().InternInteger(c)});
    p.AddAtom(a, c);
  }
  p.form = NormalForm::kConjunctive;
  Evaluator eval(ws->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluateSubclass(p, h.music_groups));
  }
  state.SetItemsProcessed(state.iterations() *
                          ws->db().Members(h.music_groups).size());
}
BENCHMARK(BM_ClauseCount)->DenseRange(1, 8, 1);

/// CNF vs DNF over the same atoms (short-circuit behaviour differs).
void BM_NormalForm(benchmark::State& state) {
  auto ws = BuildScaledMusic(32);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Predicate p;
  for (int c = 0; c < 4; ++c) {
    Atom a;
    a.lhs = Term::Candidate({h.size});
    a.op = SetOp::kEqual;
    a.rhs = Term::Constant({ws->db().InternInteger(2 + c)});
    p.AddAtom(a, c);
  }
  p.form = state.range(0) == 0 ? NormalForm::kConjunctive
                               : NormalForm::kDisjunctive;
  state.SetLabel(state.range(0) == 0 ? "CNF" : "DNF");
  Evaluator eval(ws->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluateSubclass(p, h.music_groups));
  }
}
BENCHMARK(BM_NormalForm)->Arg(0)->Arg(1);

/// Whole-workspace re-evaluation (the worksheet commit + fixpoint chase).
void BM_ReevaluateAll(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  // Two chained derived classes: piano-quartet style and its subclass.
  ClassId big = ws->db()
                    .CreateSubclass("big_groups", h.music_groups,
                                    isis::sdm::Membership::kEnumerated)
                    .ValueOrDie();
  Predicate p1;
  Atom a1;
  a1.lhs = Term::Candidate({h.size});
  a1.op = SetOp::kGreater;
  a1.rhs = Term::Constant({ws->db().InternInteger(3)});
  p1.AddAtom(a1, 0);
  benchmark::DoNotOptimize(ws->DefineSubclassMembership(big, p1).ok());
  ClassId stringy = ws->db()
                        .CreateSubclass("stringy_big", big,
                                        isis::sdm::Membership::kEnumerated)
                        .ValueOrDie();
  Predicate p2;
  Atom a2;
  a2.lhs = Term::Candidate({h.members, h.plays, h.family});
  a2.op = SetOp::kWeakMatch;
  a2.rhs = Term::Constant(
      {ws->db().FindEntity(h.families, "family0").ValueOrDie()});
  p2.AddAtom(a2, 0);
  benchmark::DoNotOptimize(ws->DefineSubclassMembership(stringy, p2).ok());
  for (auto _ : state) {
    isis::Status st = ws->ReevaluateAll();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_ReevaluateAll)->RangeMultiplier(4)->Range(1, 64);

/// Ablation: grouping-as-index fast path vs full scan for a selection on a
/// grouped attribute (`e.family = {family0}` with by_family defined).
void BM_IndexedSelection(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  bool use_index = state.range(1) != 0;
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({h.family});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant(
      {ws->db().FindEntity(h.families, "family0").ValueOrDie()});
  p.AddAtom(a, 0);
  Evaluator eval(ws->db());
  eval.set_use_grouping_index(use_index);
  (void)ws->db().GroupingBlocks(h.by_family);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluateSubclass(p, h.instruments).size());
  }
  state.SetLabel(use_index ? "grouping-index" : "scan");
  state.counters["members"] =
      static_cast<double>(ws->db().Members(h.instruments).size());
}
BENCHMARK(BM_IndexedSelection)->ArgsProduct({{4, 32, 256}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
