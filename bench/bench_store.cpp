/// \file bench_store.cpp
/// \brief Save/load cost of the store format vs database size (the paper's
/// session ends by saving the database; undo/redo snapshots also ride this
/// path).

#include <benchmark/benchmark.h>

#include "datasets/scaled_music.h"
#include "store/serializer.h"

namespace {

using isis::datasets::BuildScaledMusic;

void BM_Save(benchmark::State& state) {
  auto ws = BuildScaledMusic(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = isis::store::Save(*ws);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_Save)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Load(benchmark::State& state) {
  auto ws = BuildScaledMusic(static_cast<int>(state.range(0)));
  std::string blob = isis::store::Save(*ws);
  for (auto _ : state) {
    auto loaded = isis::store::Load(blob);
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize((*loaded)->db().AllEntities().size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_Load)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

/// The undo snapshot pair (save current + reload previous) as the UI pays
/// it on every mutating command.
void BM_UndoSnapshotCycle(benchmark::State& state) {
  auto ws = BuildScaledMusic(static_cast<int>(state.range(0)));
  std::string snapshot = isis::store::Save(*ws);
  for (auto _ : state) {
    std::string current = isis::store::Save(*ws);
    auto restored = isis::store::Load(snapshot);
    if (!restored.ok()) {
      state.SkipWithError(restored.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(current.size());
  }
}
BENCHMARK(BM_UndoSnapshotCycle)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
