/// \file bench_store.cpp
/// \brief Durable store costs: atomic checkpoint save/load and the
/// write-ahead log's append and crash-recovery replay.
///
/// Times the four durability operations on scaled_music at several scales
/// and emits one machine-readable JSON line per configuration:
///
///   {"name":"store_durability","op":"checkpoint_save","scale":16,...}
///
/// ops:
///   checkpoint_save   store::SaveToFile — serialize + seal v2 + write-to-
///                     temp + fsync + rename, per call
///   checkpoint_load   store::LoadFromFile — read + checksum-verify +
///                     rebuild + consistency check, per call
///   wal_append_event  one durable session event end to end: dispatch +
///                     frame + write + fsync, per event
///   wal_replay        crash recovery: read log, load base checkpoint,
///                     replay every event, re-validate — per logged event
///
/// A custom main (not Google Benchmark): each sample does real fsyncs, far
/// too slow for statistical repetition, and the JSON-lines contract is the
/// point.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datasets/scaled_music.h"
#include "store/file.h"
#include "store/serializer.h"
#include "ui/controller.h"

namespace {

using Clock = std::chrono::steady_clock;
using isis::datasets::BuildScaledMusic;
using isis::ui::SessionController;

double NsSince(Clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void Emit(const char* op, int scale, const char* extra_key,
          long long extra_value, double ns_per_op) {
  std::printf(
      "{\"name\":\"store_durability\",\"op\":\"%s\",\"scale\":%d,"
      "\"%s\":%lld,\"ns_per_op\":%.0f}\n",
      op, scale, extra_key, extra_value, ns_per_op);
  std::fflush(stdout);
}

void RunScale(int scale) {
  const std::string name = "bench_store_db";
  const std::string ckpt = name + ".isis";
  const std::string wal = name + ".isis.wal";
  isis::store::FileEnv* env = isis::store::FileEnv::Default();
  (void)env->Remove(ckpt);
  (void)env->Remove(wal);

  auto ws = BuildScaledMusic(scale, /*seed=*/7);
  ws->set_name(name);
  const long long bytes =
      static_cast<long long>(isis::store::Save(*ws).size());

  // Checkpoint save: serialize, seal, write-to-temp, fsync, rename.
  const int kIters = 5;
  auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    if (!isis::store::SaveToFile(*ws, ckpt).ok()) std::abort();
  }
  Emit("checkpoint_save", scale, "bytes", bytes, NsSince(t0) / kIters);

  // Checkpoint load: read, verify every checksum, rebuild, re-check.
  t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    if (!isis::store::LoadFromFile(ckpt).ok()) std::abort();
  }
  Emit("checkpoint_load", scale, "bytes", bytes, NsSince(t0) / kIters);

  // WAL append: a durable session dispatching real events, each made
  // durable (write + fsync) before the next is accepted.
  auto session = SessionController::OpenDurable(std::move(ws), {"."});
  if (!session.ok()) std::abort();
  const int kCreates = 10;
  const long long events = 3 * kCreates;
  t0 = Clock::now();
  for (int c = 0; c < kCreates; ++c) {
    if (!(*session)
             ->RunScript("pick class:musicians\ncmd create subclass\n"
                         "type bench_sub_" +
                         std::to_string(c) + "\n")
             .ok()) {
      std::abort();
    }
  }
  Emit("wal_append_event", scale, "events", events,
       NsSince(t0) / static_cast<double>(events));

  // Crash (no orderly shutdown), then time recovery: replay the log.
  session->reset();
  auto ws2 = BuildScaledMusic(scale, /*seed=*/7);
  ws2->set_name(name);
  t0 = Clock::now();
  auto recovered = SessionController::OpenDurable(std::move(ws2), {"."});
  double ns = NsSince(t0);
  if (!recovered.ok()) std::abort();
  Emit("wal_replay", scale, "events", events,
       ns / static_cast<double>(events));

  (void)env->Remove(ckpt);
  (void)env->Remove(wal);
}

}  // namespace

int main() {
  for (int scale : {4, 16, 64}) RunScale(scale);
  return 0;
}
