/// \file bench_server.cpp
/// \brief Multi-session server throughput as the worker pool grows, swept
/// across read/write mixes.
///
/// K client threads each drive one session through the production client
/// stack -- RetryingClient over the in-process loopback transport (full
/// wire framing with deadline/write_seq extensions, no socket) -- against
/// one shared scaled_music database. Three mixes are swept: 50/50, 95/5
/// and 100/0 query/assign, each at 1, 4 and 8 worker threads. The
/// transport is fault-free, so this doubles as the "does the retry layer
/// cost anything when nothing fails" benchmark; kRetry sheds under load
/// are absorbed by the client's backoff instead of being counted as
/// answered ops. Writes are disjoint by session -- session s only
/// reassigns its own slice of musicians, to fixed values -- so the final
/// database state is interleaving-independent and the run can assert
/// byte-identical query answers across every thread count of a mix.
///
/// The mixes are chosen to exercise the query-result cache (query/cache.h)
/// at three invalidation rates: at 100/0 everything after warmup is a hit;
/// at 95/5 each write invalidates the entries reading the written
/// attribute and the hit rate measures how fast they repopulate; at 50/50
/// the cache is mostly cold and the bench measures that it does not *cost*
/// anything. Each throughput line carries the cache counters and hit rate.
///
/// One JSON line per (mix, pool size), bench_predicates-style:
///
///   {"name":"server_throughput","threads":4,"sessions":8,"ops":3200,
///    "read_frac":0.95,"ops_per_sec":...,"p50_us":...,"p95_us":...,
///    "max_us":...,"sheds":...,"promotions":...,"write_lock_wait_us":...,
///    "cache_hits":...,"cache_misses":...,"cache_hit_rate":...,
///    "retries":...,"retry_hints":...}
///
/// plus one summary line per mix:
///
///   {"name":"server_scaling","read_frac":0.95,"speedup_4x":...,
///    "speedup_8x":...,"final_state_identical":true}
///
/// speedup_4x is ops_per_sec(4 threads) / ops_per_sec(1 thread). The
/// numbers are hardware-dependent: on a single-core container the pool
/// cannot run requests in parallel, and speedup_4x mostly measures how well
/// the executor overlaps one session's wait with another's work; multi-core
/// hosts see the shared-lock read parallelism directly (the CI bench job
/// asserts speedup_4x >= 1.0 on the 95/5 mix there). A custom main (not
/// Google Benchmark): the JSON-lines contract is the point, and one process
/// run doubles as the CI smoke test.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/scaled_music.h"
#include "server/loopback.h"
#include "server/retry.h"
#include "server/session.h"

namespace {

using Clock = std::chrono::steady_clock;
using isis::Result;
using isis::datasets::BuildScaledMusic;
using isis::server::Frame;
using isis::server::JoinFields;
using isis::server::LoopbackClient;
using isis::server::LoopbackTransport;
using isis::server::MsgType;
using isis::server::RetryCounters;
using isis::server::RetryingClient;
using isis::server::RetryOptions;
using isis::server::Server;
using isis::server::ServerOptions;
using isis::server::StatsSnapshot;

constexpr int kScale = 4;      // ~64 musicians, 8 instruments, 12 groups.
constexpr int kSessions = 8;
constexpr int kOpsPerSession = 400;

/// One assign per this many ops; 0 = read-only. {2, 20, 0} gives the
/// 50/50, 95/5 and 100/0 mixes.
constexpr int kWriteEverySweep[] = {2, 20, 0};

/// The canonical post-run probe: answers must be byte-identical across
/// every worker-pool size of one mix.
const char* const kFinalQueries[][2] = {
    {"musicians", "e.plays ]= {inst0}"},
    {"musicians", "e.plays ]= {inst1}"},
    {"music_groups", "e.size = {3}"},
};

double ReadFrac(int write_every) {
  return write_every == 0 ? 1.0 : 1.0 - 1.0 / write_every;
}

struct RunResult {
  double ops_per_sec = 0.0;
  StatsSnapshot stats;
  std::int64_t retries = 0;      ///< Client-side resends, summed.
  std::int64_t retry_hints = 0;  ///< kRetry sheds absorbed by backoff.
  std::vector<std::string> final_payloads;
};

/// One client session's script: queries, with every write_every-th op an
/// assign into this session's own slice of musicians (disjoint across
/// sessions, idempotent values). Driven through RetryingClient, so a
/// kRetry shed is retried after backoff rather than dropped.
void ClientScript(Server* srv, int session_index, int write_every, char* ok,
                  RetryCounters* counters) {
  RetryOptions retry_options;
  retry_options.max_attempts = 16;
  retry_options.timeout_ms = 30000;  // Generous: sheds, not deadlines.
  retry_options.jitter_seed = 100 + static_cast<std::uint64_t>(session_index);
  RetryingClient client(
      std::make_unique<LoopbackTransport>(
          srv, "bench" + std::to_string(session_index)),
      retry_options);
  if (!client.Connect().ok()) {
    *ok = false;
    return;
  }
  const int total_musicians = 16 * kScale;
  const int slice = total_musicians / kSessions;
  const int base = session_index * slice;
  int next_write = 0;
  for (int op = 0; op < kOpsPerSession; ++op) {
    if (write_every > 0 && op % write_every == write_every - 1) {
      // Deterministic target and value: musician (base + i) plays
      // inst(i % 2), regardless of interleaving.
      int i = next_write++ % slice;
      if (!client
               .Assign("musicians", "musician" + std::to_string(base + i),
                       "plays", "inst" + std::to_string(i % 2))
               .ok()) {
        *ok = false;
        return;
      }
    } else {
      const char* const* q = kFinalQueries[op % 3];
      Result<Frame> resp =
          client.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
      if (!resp.ok() || resp->type != MsgType::kQueryResult) {
        *ok = false;
        return;
      }
    }
  }
  *counters = client.counters();
}

RunResult RunConfig(int threads, int write_every) {
  ServerOptions options;
  options.threads = threads;
  Result<std::unique_ptr<Server>> opened =
      Server::Open(BuildScaledMusic(kScale), options);
  if (!opened.ok()) std::abort();
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

  std::vector<std::thread> clients;
  std::vector<char> oks(kSessions, 1);
  std::vector<RetryCounters> counters(kSessions);
  auto t0 = Clock::now();
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back(ClientScript, srv.get(), s, write_every, &oks[s],
                         &counters[s]);
  }
  for (std::thread& t : clients) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                t0)
          .count();
  for (char ok : oks) {
    if (!ok) std::abort();
  }

  RunResult r;
  r.ops_per_sec = (kSessions * kOpsPerSession) / secs;
  for (const RetryCounters& c : counters) {
    r.retries += c.retries;
    r.retry_hints += c.retry_hints;
  }
  LoopbackClient probe(srv.get());
  if (!probe.Connect("probe").ok()) std::abort();
  for (const auto& q : kFinalQueries) {
    Result<Frame> resp = probe.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
    if (!resp.ok() || resp->type != MsgType::kQueryResult) std::abort();
    r.final_payloads.push_back(resp->payload);
  }
  // Snapshot after Shutdown: it drains the pool and syncs the result-cache
  // counters into the stats block.
  srv->Shutdown();
  r.stats = srv->stats().Snapshot();
  return r;
}

}  // namespace

int main() {
  const int thread_counts[] = {1, 4, 8};
  bool all_identical = true;
  for (int write_every : kWriteEverySweep) {
    std::vector<RunResult> results;
    for (int threads : thread_counts) {
      RunResult r = RunConfig(threads, write_every);
      const double lookups =
          static_cast<double>(r.stats.cache_hits + r.stats.cache_misses);
      std::printf(
          "{\"name\":\"server_throughput\",\"threads\":%d,\"sessions\":%d,"
          "\"ops\":%d,\"read_frac\":%.2f,\"ops_per_sec\":%.0f,"
          "\"p50_us\":%.1f,\"p95_us\":%.1f,\"max_us\":%lld,\"sheds\":%lld,"
          "\"promotions\":%lld,\"write_lock_wait_us\":%lld,"
          "\"cache_hits\":%lld,\"cache_misses\":%lld,"
          "\"cache_hit_rate\":%.3f,\"retries\":%lld,\"retry_hints\":%lld}\n",
          threads, kSessions, kSessions * kOpsPerSession,
          ReadFrac(write_every), r.ops_per_sec, r.stats.p50_us,
          r.stats.p95_us, static_cast<long long>(r.stats.max_us),
          static_cast<long long>(r.stats.sheds),
          static_cast<long long>(r.stats.promotions),
          static_cast<long long>(r.stats.write_lock_wait_us),
          static_cast<long long>(r.stats.cache_hits),
          static_cast<long long>(r.stats.cache_misses),
          lookups > 0 ? static_cast<double>(r.stats.cache_hits) / lookups
                      : 0.0,
          static_cast<long long>(r.retries),
          static_cast<long long>(r.retry_hints));
      results.push_back(std::move(r));
    }

    bool identical = true;
    for (const RunResult& r : results) {
      if (r.final_payloads != results[0].final_payloads) identical = false;
    }
    all_identical = all_identical && identical;
    std::printf(
        "{\"name\":\"server_scaling\",\"read_frac\":%.2f,"
        "\"speedup_4x\":%.2f,\"speedup_8x\":%.2f,"
        "\"final_state_identical\":%s}\n",
        ReadFrac(write_every), results[1].ops_per_sec / results[0].ops_per_sec,
        results[2].ops_per_sec / results[0].ops_per_sec,
        identical ? "true" : "false");
  }
  return all_identical ? 0 : 1;
}
