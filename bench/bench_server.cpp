/// \file bench_server.cpp
/// \brief Multi-session durable-server throughput as the worker pool grows,
/// swept across read/write mixes AND WAL sync policies.
///
/// K client threads each drive one session through the production client
/// stack -- RetryingClient over the in-process loopback transport (full
/// wire framing with deadline/write_seq extensions, no socket) -- against
/// one shared scaled_music database running DURABLE: every assign is in the
/// on-disk WAL before its reply. Three mixes are swept -- 0/100, 50/50 and
/// 95/5 query/assign -- each under three sync policies (per_commit, group,
/// none; store/group_commit.h) at 1, 4 and 8 worker threads. Writes are
/// disjoint by session and idempotent, so the final database state is
/// interleaving-independent and the run asserts byte-identical query
/// answers across every thread count of one (mix, policy) cell.
///
/// The sweep isolates what group commit buys: under per_commit every write
/// pays its own fsync; under group concurrent writers share one; none is
/// the no-durability ceiling. The group-size and fsync counters on each
/// line show the mechanism (syncs_per_write < 1 = groups formed), and the
/// scaling line per cell shows the effect (multi-thread throughput no
/// longer collapsing under the write-heavy mixes).
///
/// One JSON line per (mix, policy, pool size):
///
///   {"name":"server_throughput","threads":4,"sessions":8,"ops":3200,
///    "read_frac":0.50,"wal_sync":"group","ops_per_sec":...,
///    "p50_us":...,"p95_us":...,"max_us":...,"sheds":...,
///    "promotions":...,"write_lock_wait_us":...,"cache_hits":...,
///    "cache_misses":...,"cache_hit_rate":...,"retries":...,
///    "retry_hints":...,"wal_records":...,"wal_syncs":...,
///    "syncs_per_write":...,"wal_group_max":...,"fsync_p50_us":...}
///
/// plus one summary line per (mix, policy):
///
///   {"name":"server_scaling","read_frac":0.50,"wal_sync":"group",
///    "speedup_4x":...,"speedup_8x":...,"final_state_identical":true}
///
/// speedup_4x is ops_per_sec(4 threads) / ops_per_sec(1 thread). The
/// numbers are hardware-dependent, but the shape is not: under per_commit
/// the fsync serializes inside the exclusive section and multi-thread
/// throughput collapses below 1x; under group the fsync waits overlap
/// (they run after the lock is released) and concurrency holds or beats
/// the single-thread line even on one core -- the CI bench job asserts
/// speedup_4x >= 1.0 for wal_sync=group on both the 95/5 and 50/50 mixes.
/// A custom main (not Google Benchmark): the JSON-lines contract is the
/// point, and one process run doubles as the CI smoke test.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/scaled_music.h"
#include "server/loopback.h"
#include "server/retry.h"
#include "server/session.h"
#include "store/file.h"
#include "store/group_commit.h"

namespace {

using Clock = std::chrono::steady_clock;
using isis::Result;
using isis::datasets::BuildScaledMusic;
using isis::server::Frame;
using isis::server::JoinFields;
using isis::server::LoopbackClient;
using isis::server::LoopbackTransport;
using isis::server::MsgType;
using isis::server::RetryCounters;
using isis::server::RetryingClient;
using isis::server::RetryOptions;
using isis::server::Server;
using isis::server::ServerOptions;
using isis::server::StatsSnapshot;
using isis::store::WalSyncPolicy;
using isis::store::WalSyncPolicyName;

constexpr int kScale = 4;      // ~64 musicians, 8 instruments, 12 groups.
constexpr int kSessions = 8;
constexpr int kOpsPerSession = 400;
const char* const kDurableDir = "/tmp";

/// One assign per this many ops; {1, 2, 20} gives the 0/100, 50/50 and
/// 95/5 read/write mixes.
constexpr int kWriteEverySweep[] = {1, 2, 20};

constexpr WalSyncPolicy kPolicySweep[] = {
    WalSyncPolicy::kPerCommit, WalSyncPolicy::kGroup, WalSyncPolicy::kNone};

/// The canonical post-run probe: answers must be byte-identical across
/// every worker-pool size of one (mix, policy) cell.
const char* const kFinalQueries[][2] = {
    {"musicians", "e.plays ]= {inst0}"},
    {"musicians", "e.plays ]= {inst1}"},
    {"music_groups", "e.size = {3}"},
};

double ReadFrac(int write_every) { return 1.0 - 1.0 / write_every; }

/// Removes the durable files a run leaves in kDurableDir, so no run
/// recovers a predecessor's WAL.
void WipeDurable(const std::string& db_name) {
  isis::store::FileEnv* env = isis::store::FileEnv::Default();
  (void)env->Remove(std::string(kDurableDir) + "/" + db_name + ".server.wal");
  (void)env->Remove(std::string(kDurableDir) + "/" + db_name +
                    ".server.wal.tmp");
  (void)env->Remove(std::string(kDurableDir) + "/" + db_name + ".isis");
  (void)env->Remove(std::string(kDurableDir) + "/" + db_name + ".isis.tmp");
}

struct RunResult {
  double ops_per_sec = 0.0;
  StatsSnapshot stats;
  std::int64_t retries = 0;      ///< Client-side resends, summed.
  std::int64_t retry_hints = 0;  ///< kRetry sheds absorbed by backoff.
  std::vector<std::string> final_payloads;
};

/// One client session's script: queries, with every write_every-th op an
/// assign into this session's own slice of musicians (disjoint across
/// sessions, idempotent values). Driven through RetryingClient, so a
/// kRetry shed is retried after backoff rather than dropped.
void ClientScript(Server* srv, int session_index, int write_every, char* ok,
                  RetryCounters* counters) {
  RetryOptions retry_options;
  retry_options.max_attempts = 16;
  retry_options.timeout_ms = 30000;  // Generous: sheds, not deadlines.
  retry_options.jitter_seed = 100 + static_cast<std::uint64_t>(session_index);
  RetryingClient client(
      std::make_unique<LoopbackTransport>(
          srv, "bench" + std::to_string(session_index)),
      retry_options);
  if (!client.Connect().ok()) {
    *ok = false;
    return;
  }
  const int total_musicians = 16 * kScale;
  const int slice = total_musicians / kSessions;
  const int base = session_index * slice;
  int next_write = 0;
  for (int op = 0; op < kOpsPerSession; ++op) {
    if (op % write_every == write_every - 1) {
      // Deterministic target and value: musician (base + i) plays
      // inst(i % 2), regardless of interleaving.
      int i = next_write++ % slice;
      if (!client
               .Assign("musicians", "musician" + std::to_string(base + i),
                       "plays", "inst" + std::to_string(i % 2))
               .ok()) {
        *ok = false;
        return;
      }
    } else {
      const char* const* q = kFinalQueries[op % 3];
      Result<Frame> resp =
          client.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
      if (!resp.ok() || resp->type != MsgType::kQueryResult) {
        *ok = false;
        return;
      }
    }
  }
  *counters = client.counters();
}

RunResult RunConfig(int threads, int write_every, WalSyncPolicy policy) {
  const std::string db_name =
      "bench_srv_w" + std::to_string(write_every) + "_" +
      WalSyncPolicyName(policy) + "_t" + std::to_string(threads);
  WipeDurable(db_name);
  ServerOptions options;
  options.threads = threads;
  options.durable_dir = kDurableDir;
  options.wal_sync = policy;
  auto ws = BuildScaledMusic(kScale);
  ws->set_name(db_name);
  Result<std::unique_ptr<Server>> opened =
      Server::Open(std::move(ws), options);
  if (!opened.ok()) std::abort();
  std::unique_ptr<Server> srv = std::move(opened).ValueOrDie();

  std::vector<std::thread> clients;
  std::vector<char> oks(kSessions, 1);
  std::vector<RetryCounters> counters(kSessions);
  auto t0 = Clock::now();
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back(ClientScript, srv.get(), s, write_every, &oks[s],
                         &counters[s]);
  }
  for (std::thread& t : clients) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                t0)
          .count();
  for (char ok : oks) {
    if (!ok) std::abort();
  }

  RunResult r;
  r.ops_per_sec = (kSessions * kOpsPerSession) / secs;
  for (const RetryCounters& c : counters) {
    r.retries += c.retries;
    r.retry_hints += c.retry_hints;
  }
  LoopbackClient probe(srv.get());
  if (!probe.Connect("probe").ok()) std::abort();
  for (const auto& q : kFinalQueries) {
    Result<Frame> resp = probe.Call(MsgType::kQuery, JoinFields({q[0], q[1]}));
    if (!resp.ok() || resp->type != MsgType::kQueryResult) std::abort();
    r.final_payloads.push_back(resp->payload);
  }
  // Snapshot after Shutdown: it drains the pool, flushes the committer and
  // syncs the result-cache counters into the stats block.
  srv->Shutdown();
  r.stats = srv->stats().Snapshot();
  WipeDurable(db_name);
  return r;
}

}  // namespace

int main() {
  const int thread_counts[] = {1, 4, 8};
  bool all_identical = true;
  for (int write_every : kWriteEverySweep) {
    for (WalSyncPolicy policy : kPolicySweep) {
      std::vector<RunResult> results;
      for (int threads : thread_counts) {
        RunResult r = RunConfig(threads, write_every, policy);
        const double lookups =
            static_cast<double>(r.stats.cache_hits + r.stats.cache_misses);
        const double syncs_per_write =
            r.stats.wal_records > 0
                ? static_cast<double>(r.stats.wal_syncs) /
                      static_cast<double>(r.stats.wal_records)
                : 0.0;
        std::printf(
            "{\"name\":\"server_throughput\",\"threads\":%d,\"sessions\":%d,"
            "\"ops\":%d,\"read_frac\":%.2f,\"wal_sync\":\"%s\","
            "\"ops_per_sec\":%.0f,"
            "\"p50_us\":%.1f,\"p95_us\":%.1f,\"max_us\":%lld,\"sheds\":%lld,"
            "\"promotions\":%lld,\"write_lock_wait_us\":%lld,"
            "\"cache_hits\":%lld,\"cache_misses\":%lld,"
            "\"cache_hit_rate\":%.3f,\"retries\":%lld,\"retry_hints\":%lld,"
            "\"wal_records\":%lld,\"wal_syncs\":%lld,"
            "\"syncs_per_write\":%.3f,\"wal_group_max\":%lld,"
            "\"fsync_p50_us\":%.1f}\n",
            threads, kSessions, kSessions * kOpsPerSession,
            ReadFrac(write_every), WalSyncPolicyName(policy), r.ops_per_sec,
            r.stats.p50_us, r.stats.p95_us,
            static_cast<long long>(r.stats.max_us),
            static_cast<long long>(r.stats.sheds),
            static_cast<long long>(r.stats.promotions),
            static_cast<long long>(r.stats.write_lock_wait_us),
            static_cast<long long>(r.stats.cache_hits),
            static_cast<long long>(r.stats.cache_misses),
            lookups > 0 ? static_cast<double>(r.stats.cache_hits) / lookups
                        : 0.0,
            static_cast<long long>(r.retries),
            static_cast<long long>(r.retry_hints),
            static_cast<long long>(r.stats.wal_records),
            static_cast<long long>(r.stats.wal_syncs), syncs_per_write,
            static_cast<long long>(r.stats.wal_group_max),
            r.stats.fsync_p50_us);
        std::fflush(stdout);
        results.push_back(std::move(r));
      }

      bool identical = true;
      for (const RunResult& r : results) {
        if (r.final_payloads != results[0].final_payloads) identical = false;
      }
      all_identical = all_identical && identical;
      std::printf(
          "{\"name\":\"server_scaling\",\"read_frac\":%.2f,"
          "\"wal_sync\":\"%s\",\"speedup_4x\":%.2f,\"speedup_8x\":%.2f,"
          "\"final_state_identical\":%s}\n",
          ReadFrac(write_every), WalSyncPolicyName(policy),
          results[1].ops_per_sec / results[0].ops_per_sec,
          results[2].ops_per_sec / results[0].ops_per_sec,
          identical ? "true" : "false");
      std::fflush(stdout);
    }
  }
  return all_identical ? 0 : 1;
}
