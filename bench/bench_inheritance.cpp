/// \file bench_inheritance.cpp
/// \brief Experiment A4: cost of inheritance resolution — single-parent
/// (the paper's model) vs the multiple-parent extension (§5 future work) —
/// across chain depth.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "query/workspace.h"

namespace {

using isis::AttributeId;
using isis::ClassId;
using isis::EntityId;
using isis::query::Workspace;
using isis::sdm::Database;
using isis::sdm::Membership;
using isis::sdm::Schema;

/// Checked unwrap for fixture setup: these creations cannot fail on a
/// fresh workspace, and a benchmark over a half-built one is meaningless.
template <typename T>
T MustGet(isis::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "bench_inheritance: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).ValueOrDie();
}

/// Builds a chain (single) or a ladder of diamonds (multi) of `depth`.
std::unique_ptr<Workspace> BuildHierarchy(int depth, bool multi) {
  Database::Options opts;
  opts.schema.allow_multiple_parents = multi;
  auto ws = std::make_unique<Workspace>(opts);
  Database& db = ws->db();
  ClassId base = MustGet(db.CreateBaseclass("base", "name"));
  (void)db.CreateAttribute(base, "a0", Schema::kIntegers(), false);
  ClassId cur = base;
  for (int d = 1; d <= depth; ++d) {
    ClassId next = MustGet(db.CreateSubclass("c" + std::to_string(d), cur,
                                             Membership::kEnumerated));
    (void)db.CreateAttribute(next, "a" + std::to_string(d),
                             Schema::kIntegers(), false);
    if (multi && d >= 2) {
      // A side parent at each level: a diamond ladder.
      ClassId side = MustGet(db.CreateSubclass("s" + std::to_string(d), cur,
                                               Membership::kEnumerated));
      (void)db.CreateAttribute(side, "sa" + std::to_string(d),
                               Schema::kIntegers(), false);
      benchmark::DoNotOptimize(db.AddParent(next, side).ok());
    }
    cur = next;
  }
  // One entity member of the deepest class.
  EntityId e = db.CreateEntity(base, "probe").ValueOrDie();
  benchmark::DoNotOptimize(db.AddToClass(e, cur).ok());
  return ws;
}

void BM_AllAttributesOf(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool multi = state.range(1) != 0;
  auto ws = BuildHierarchy(depth, multi);
  ClassId deepest =
      *ws->db().schema().FindClass("c" + std::to_string(depth));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ws->db().schema().AllAttributesOf(deepest).size());
  }
  state.SetLabel(multi ? "multi-parent" : "single-parent");
  state.counters["visible_attrs"] = static_cast<double>(
      ws->db().schema().AllAttributesOf(deepest).size());
}
BENCHMARK(BM_AllAttributesOf)
    ->ArgsProduct({{2, 4, 8, 16}, {0, 1}});

void BM_FindInheritedAttribute(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool multi = state.range(1) != 0;
  auto ws = BuildHierarchy(depth, multi);
  ClassId deepest =
      *ws->db().schema().FindClass("c" + std::to_string(depth));
  for (auto _ : state) {
    // The root attribute: worst-case walk.
    benchmark::DoNotOptimize(
        ws->db().schema().FindAttribute(deepest, "a0").ok());
  }
  state.SetLabel(multi ? "multi-parent" : "single-parent");
}
BENCHMARK(BM_FindInheritedAttribute)->ArgsProduct({{2, 4, 8, 16}, {0, 1}});

void BM_IsMemberDeepClass(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool multi = state.range(1) != 0;
  auto ws = BuildHierarchy(depth, multi);
  ClassId deepest =
      *ws->db().schema().FindClass("c" + std::to_string(depth));
  EntityId probe =
      *ws->db().FindEntity(*ws->db().schema().FindClass("base"), "probe");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws->db().IsMember(probe, deepest));
  }
  state.SetLabel(multi ? "multi-parent" : "single-parent");
}
BENCHMARK(BM_IsMemberDeepClass)->ArgsProduct({{2, 4, 8, 16}, {0, 1}});

void BM_MembershipPropagation(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool multi = state.range(1) != 0;
  auto ws = BuildHierarchy(depth, multi);
  Database& db = ws->db();
  ClassId base = *db.schema().FindClass("base");
  ClassId deepest = *db.schema().FindClass("c" + std::to_string(depth));
  EntityId e = MustGet(db.CreateEntity(base, "walker"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.AddToClass(e, deepest).ok());
    state.PauseTiming();
    benchmark::DoNotOptimize(
        db.RemoveFromClass(e, *db.schema().FindClass("c1")).ok());
    state.ResumeTiming();
  }
  state.SetLabel(multi ? "multi-parent" : "single-parent");
}
BENCHMARK(BM_MembershipPropagation)->ArgsProduct({{2, 4, 8}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
