/// \file bench_navigation.cpp
/// \brief Experiment A3a: data-level navigation cost — follow, pop,
/// select/reject and grouping-set following — as the database scales.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datasets/scaled_music.h"
#include "ui/controller.h"

namespace {

using isis::Rng;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::ui::SessionController;

/// follow + pop round trip on a class page (image of the whole selection).
void BM_FollowPop(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  SessionController session(BuildScaledMusic(scale));
  isis::Status st = session.RunScript(
      "pick class:musicians\ncmd view contents\n"
      "pick member:musician0\npick member:musician1\n");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    isis::Status follow = session.RunScript(
        "cmd follow\npick attr:plays\ncmd pop\n");
    if (!follow.ok()) state.SkipWithError(follow.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FollowPop)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

/// Following a grouping block into the parent class (Figure 6 -> 7).
void BM_FollowGroupingSet(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  SessionController session(BuildScaledMusic(scale));
  isis::Status st = session.RunScript(
      "pick grouping:by_family\ncmd view contents\npick member:family0\n");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    isis::Status follow = session.RunScript("cmd follow\ncmd pop\n");
    if (!follow.ok()) state.SkipWithError(follow.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FollowGroupingSet)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

/// select/reject toggling (pick resolution + set update + re-render path).
void BM_SelectReject(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  SessionController session(BuildScaledMusic(scale));
  isis::Status st =
      session.RunScript("pick class:musicians\ncmd view contents\n");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    isis::Status pick = session.RunScript("pick member:musician0\n");
    if (!pick.ok()) state.SkipWithError(pick.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectReject)->RangeMultiplier(4)->Range(1, 64);

/// Raw map evaluation underneath `follow`: image of a full class under a
/// two-step path.
void BM_MapImageWholeClass(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  auto ws = BuildScaledMusic(scale);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  isis::AttributeId path[] = {h.members, h.plays};
  const isis::sdm::EntitySet& groups = ws->db().Members(h.music_groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws->db().EvaluateMap(groups, path).size());
  }
  state.counters["start_set"] = static_cast<double>(groups.size());
}
BENCHMARK(BM_MapImageWholeClass)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
