/// \file bench_diagram1.cpp
/// \brief Experiment D1: Diagram 1, the interconnection of ISIS components.
///
/// Exhaustively drives every arc of the two-level state machine — schema
/// selection changes at both levels, view switches (forest <-> network <->
/// worksheet <-> data), and the temporary-visit loops that must preserve
/// both the schema selection S and the data selection D — asserting the
/// documented invariants on each lap, and measures transition throughput.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "datasets/instrumental_music.h"
#include "ui/controller.h"

namespace {

using isis::Status;
using isis::datasets::BuildInstrumentalMusic;
using isis::ui::Level;
using isis::ui::SessionController;
using isis::ui::TempVisit;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "diagram1 invariant failed: %s\n", what);
    std::exit(1);
  }
}

/// One full lap around Diagram 1, checking level/selection invariants.
void Lap(SessionController* s) {
  // Schema level: S <- S' in the forest.
  Require(s->RunScript("pick class:musicians\n").ok(), "select class");
  Require(s->state().level == Level::kInheritanceForest, "at forest");
  // Forest -> semantic network (view associations), navigate, pop back.
  Require(s->RunScript("cmd view associations\n").ok(), "to network");
  Require(s->state().level == Level::kSemanticNetwork, "at network");
  Require(s->RunScript("pick class:instruments\ncmd pop\n").ok(),
          "navigate + pop");
  Require(s->state().level == Level::kInheritanceForest, "back at forest");
  // Forest -> data level (view contents); D <- D' at the data level.
  Require(s->RunScript("cmd view contents\npick member:flute\n").ok(),
          "to data level");
  Require(s->state().level == Level::kDataLevel, "at data level");
  Require(s->state().pages.size() == 1, "one page");
  // Data-level navigation along a map, and back.
  Require(s->RunScript("cmd follow\npick attr:family\ncmd pop\n").ok(),
          "follow + pop");
  // Data level -> forest -> worksheet (define) -> temporary visit to the
  // data level for a constant -> back, preserving S and D.
  Require(s->RunScript("cmd view forest\n"
                       "pick class:play_strings\n"
                       "cmd (re)define membership\n"
                       "pick atom:B\n"
                       "cmd edit\n"
                       "pick attr:union\n"
                       "cmd rhs constant\n")
              .ok(),
          "worksheet + constant visit");
  Require(s->state().level == Level::kDataLevel, "temp visit at data level");
  Require(s->state().temp_visit == TempVisit::kConstantSelection,
          "temp visit flagged");
  Require(s->RunScript("pick member:YES\ncmd accept constant\n").ok(),
          "accept constant");
  Require(s->state().level == Level::kPredicateWorksheet,
          "returned to worksheet");
  Require(s->state().temp_visit == TempVisit::kNone, "visit cleared");
  // Diagram 1's invariant: the schema selection survived the visit.
  Require(
      s->workspace().db().schema().GetClass(s->state().selection.cls).name ==
          "play_strings",
      "S preserved across the temporary visit");
  Require(s->RunScript("cmd abort\n").ok(), "abort worksheet");
  Require(s->state().level == Level::kInheritanceForest, "back at forest");
}

void BM_Diagram1Lap(benchmark::State& state) {
  SessionController session(BuildInstrumentalMusic());
  std::int64_t transitions = 0;
  for (auto _ : state) {
    Lap(&session);
    transitions += 16;
  }
  state.counters["transitions_per_lap"] = 16;
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_Diagram1Lap)->Unit(benchmark::kMicrosecond);

/// Raw event dispatch throughput (pick + command alternation).
void BM_EventDispatch(benchmark::State& state) {
  SessionController session(BuildInstrumentalMusic());
  Require(session.RunScript("pick class:musicians\n").ok(), "setup");
  bool network = false;
  for (auto _ : state) {
    Status st = session.HandleEvent(
        isis::input::CommandEvent{network ? "pop" : "view associations"});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    network = !network;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDispatch);

/// Hit-testing cost on a fully rendered forest.
void BM_HitTest(benchmark::State& state) {
  SessionController session(BuildInstrumentalMusic());
  const isis::ui::Screen& screen = session.Render();
  int x = 0, y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(screen.HitTest(x, y));
    x = (x + 7) % isis::ui::kScreenWidth;
    y = (y + 3) % isis::ui::kScreenHeight;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitTest);

}  // namespace

BENCHMARK_MAIN();
