/// \file bench_interaction_steps.cpp
/// \brief Experiment C3: the paper's motivating claim that a system like
/// ISIS "can substantially reduce the amount of time required to construct
/// programs of this type".
///
/// Time-to-construct is dominated by interaction steps. For a battery of
/// eight queries over the Instrumental_Music database we count (a) ISIS
/// interaction events (picks, commands, typed lines — the replayable
/// session script) and (b) QBE filled template cells plus skeleton rows
/// (each row requires summoning the relation's skeleton), and report both,
/// while also timing the ISIS construction+evaluation path end to end.
///
/// Reading: simple selections cost about the same; path (join) queries cost
/// roughly one extra pick per map step in ISIS but one extra skeleton row
/// plus two example-element cells in QBE, so ISIS's advantage grows with
/// path length — the paper's "slightly more complex queries exceed the
/// capabilities of a novice user" argument quantified.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "datasets/instrumental_music.h"
#include "input/event.h"
#include "rel/encode.h"
#include "rel/qbe.h"
#include "ui/controller.h"

namespace {

using isis::datasets::BuildInstrumentalMusic;
using isis::rel::CompareOp;
using isis::rel::QbeCell;
using isis::rel::QbeQuery;
using isis::rel::QbeRow;
using isis::rel::Value;

struct QueryCase {
  const char* name;
  /// ISIS session script: create a derived subclass and commit it.
  std::string isis_script;
  /// The same query in QBE.
  QbeQuery qbe;
};

QbeQuery MakeQbe(std::vector<QbeRow> rows) {
  QbeQuery q;
  for (QbeRow& r : rows) q.AddRow(std::move(r));
  return q;
}

std::vector<QueryCase> BuildCases() {
  std::vector<QueryCase> cases;

  // 1. Selection on a boolean attribute: popular instruments.
  cases.push_back(QueryCase{
      "popular_instruments",
      "pick class:instruments\n"
      "cmd create subclass\n"
      "type q1\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:popular\npick op:=\n"
      "cmd rhs constant\npick member:YES\ncmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"instruments_popular",
                      {QbeCell::Print("_i"),
                       QbeCell::Const(Value::Boolean(true))}}})});

  // 2. Selection with comparison: groups larger than 3.
  cases.push_back(QueryCase{
      "big_groups",
      "pick class:music_groups\n"
      "cmd create subclass\n"
      "type q2\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:size\npick op:>\n"
      "cmd rhs constant\npick member:3\ncmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"music_groups_size",
                      {QbeCell::Print("_g"),
                       QbeCell::Const(Value::Integer(3), CompareOp::kGt)}}})});

  // 3. One-step path: musicians who play the piano.
  cases.push_back(QueryCase{
      "pianists",
      "pick class:musicians\n"
      "cmd create subclass\n"
      "type q3\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:plays\npick op:]=\n"
      "cmd rhs constant\ncmd members down\npick member:piano\n"
      "cmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"musicians_plays",
                      {QbeCell::Print("_m"),
                       QbeCell::Const(Value::String("piano"))}}})});

  // 4. Two-step path: musicians who play a stringed instrument.
  cases.push_back(QueryCase{
      "string_players",
      "pick class:musicians\n"
      "cmd create subclass\n"
      "type q4\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:plays\npick attr:family\npick op:~\n"
      "cmd rhs constant\npick member:stringed\ncmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"musicians_plays",
                      {QbeCell::Print("_m"), QbeCell::Var("_i")}},
               QbeRow{"instruments_family",
                      {QbeCell::Var("_i"),
                       QbeCell::Const(Value::String("stringed"))}}})});

  // 5. The paper's quartets query (conjunction + two-step path).
  cases.push_back(QueryCase{
      "quartets",
      "pick class:music_groups\n"
      "cmd create subclass\n"
      "type q5\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:2\ncmd edit\n"
      "pick attr:size\npick op:=\n"
      "cmd rhs constant\npick member:4\ncmd accept constant\n"
      "pick atom:E\npick clause:1\ncmd edit\n"
      "pick attr:members\npick attr:plays\npick op:]=\n"
      "cmd rhs constant\ncmd members down\npick member:piano\n"
      "cmd accept constant\n"
      "cmd switch and/or\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"music_groups_size",
                      {QbeCell::Print("_g"), QbeCell::Const(Value::Integer(4))}},
               QbeRow{"music_groups_members",
                      {QbeCell::Var("_g"), QbeCell::Var("_m")}},
               QbeRow{"musicians_plays",
                      {QbeCell::Var("_m"),
                       QbeCell::Const(Value::String("piano"))}}})});

  // 6. Negation: non-union musicians.
  cases.push_back(QueryCase{
      "non_union",
      "pick class:musicians\n"
      "cmd create subclass\n"
      "type q6\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:union\npick op:=\ncmd negate\n"
      "cmd rhs constant\npick member:YES\ncmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"musicians_union",
                      {QbeCell::Print("_m"),
                       QbeCell::Const(Value::Boolean(true),
                                      CompareOp::kNe)}}})});

  // 7. Disjunction: duos or quintets.
  cases.push_back(QueryCase{
      "duos_or_quintets",
      "pick class:music_groups\n"
      "cmd create subclass\n"
      "type q7\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:size\npick op:=\n"
      "cmd rhs constant\npick member:2\ncmd accept constant\n"
      "pick atom:B\npick clause:2\ncmd edit\n"
      "pick attr:size\npick op:=\n"
      "cmd rhs constant\npick member:5\ncmd accept constant\n"
      "cmd commit\n",
      // QBE expresses disjunction with two template rows whose P. targets
      // union (two skeletons filled).
      MakeQbe({QbeRow{"music_groups_size",
                      {QbeCell::Print("_g"), QbeCell::Const(Value::Integer(2))}},
               QbeRow{"music_groups_size",
                      {QbeCell::Print("_h"),
                       QbeCell::Const(Value::Integer(5))}}})});

  // 8. Three-step path: groups that include a percussion-family instrument.
  cases.push_back(QueryCase{
      "percussion_groups",
      "pick class:music_groups\n"
      "cmd create subclass\n"
      "type q8\n"
      "cmd (re)define membership\n"
      "pick atom:A\npick clause:1\ncmd edit\n"
      "pick attr:members\npick attr:plays\npick attr:family\npick op:~\n"
      "cmd rhs constant\npick member:percussion\ncmd accept constant\n"
      "cmd commit\n",
      MakeQbe({QbeRow{"music_groups_members",
                      {QbeCell::Print("_g"), QbeCell::Var("_m")}},
               QbeRow{"musicians_plays",
                      {QbeCell::Var("_m"), QbeCell::Var("_i")}},
               QbeRow{"instruments_family",
                      {QbeCell::Var("_i"),
                       QbeCell::Const(Value::String("percussion"))}}})});

  return cases;
}

int CountIsisEvents(const std::string& script) {
  auto events = isis::input::ParseScript(script);
  return events.ok() ? static_cast<int>(events->size()) : -1;
}

/// Per-query construction + evaluation through the real interface.
void BM_IsisQueryConstruction(benchmark::State& state) {
  std::vector<QueryCase> cases = BuildCases();
  const QueryCase& qc = cases[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    isis::ui::SessionController session(BuildInstrumentalMusic());
    isis::Status st = session.RunScript(qc.isis_script);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  // The comparison table, as counters on this benchmark.
  state.SetLabel(qc.name);
  state.counters["isis_events"] = CountIsisEvents(qc.isis_script);
  state.counters["qbe_filled_cells"] = qc.qbe.FilledCellCount();
  state.counters["qbe_rows"] = static_cast<double>(qc.qbe.rows().size());
}
BENCHMARK(BM_IsisQueryConstruction)
    ->DenseRange(0, 7, 1)
    ->Unit(benchmark::kMicrosecond);

void PrintComparisonTable() {
  std::printf(
      "\nC3: interaction-effort comparison (ISIS events vs QBE template "
      "work)\n");
  std::printf("%-22s %14s %18s %10s\n", "query", "isis_events",
              "qbe_filled_cells", "qbe_rows");
  // QBE also verified to return the same answers (see
  // relational_completeness_test / qbe_test); here we count effort only.
  isis::ui::SessionController probe(BuildInstrumentalMusic());
  for (const QueryCase& qc : BuildCases()) {
    isis::ui::SessionController session(BuildInstrumentalMusic());
    isis::Status st = session.RunScript(qc.isis_script);
    std::printf("%-22s %14d %18d %10zu%s\n", qc.name,
                CountIsisEvents(qc.isis_script), qc.qbe.FilledCellCount(),
                qc.qbe.rows().size(),
                st.ok() ? "" : "  (ISIS REPLAY FAILED)");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
