/// \file bench_live_views.cpp
/// \brief Live-view maintenance vs whole-catalog recomputation.
///
/// The seed's only way to keep stored derived subclasses, derived attributes
/// and constraints fresh was Workspace::ReevaluateAll after every edit — a
/// full scan of every view. The live engine maintains the same state from
/// mutation deltas. This bench applies identical point-mutation streams
/// (toggling a random musician's `plays`) to scaled_music databases at
/// several scales and times both strategies end to end, emitting one
/// machine-readable JSON line per configuration:
///
///   {"name":"live_views","mode":"incremental","scale":64,"ns_per_op":...}
///
/// plus the engine's per-view counters for the incremental runs. A custom
/// main (not Google Benchmark): the recompute arm at large scales is far too
/// slow for statistical repetition, and the JSON-lines contract is the
/// point.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "datasets/scaled_music.h"
#include "live/engine.h"
#include "query/workspace.h"

namespace {

using isis::AttributeId;
using isis::ClassId;
using isis::EntityId;
using isis::Rng;
using isis::datasets::BuildScaledMusic;
using isis::datasets::ResolveScaledMusic;
using isis::datasets::ScaledMusicHandles;
using isis::query::Atom;
using isis::query::AttributeDerivation;
using isis::query::Predicate;
using isis::query::SetOp;
using isis::query::Term;
using isis::query::Workspace;
using isis::sdm::EntitySet;
using isis::sdm::Membership;

/// scaled_music ships no derived views; install the bench's catalog: a
/// derived subclass over a constant instrument set, a view-feeds-view
/// subclass chain, a two-step derived attribute, and one constraint.
void DefineViews(Workspace* ws, const ScaledMusicHandles& h) {
  isis::sdm::Database& db = ws->db();
  // Instruments of family0 stand in for the paper's strings.
  EntitySet strings;
  for (EntityId in : db.Members(h.instruments)) {
    if (db.NameOf(db.GetSingle(in, h.family)) == "family0") {
      strings.insert(in);
    }
  }
  ClassId play_strings = *db.CreateSubclass("play_strings", h.musicians,
                                            Membership::kEnumerated);
  {
    Predicate p;
    Atom a;
    a.lhs = Term::Candidate({h.plays});
    a.op = SetOp::kWeakMatch;
    a.rhs = Term::Constant(strings);
    p.AddAtom(a, 0);
    if (!ws->DefineSubclassMembership(play_strings, p).ok()) std::abort();
  }
  ClassId string_groups = *db.CreateSubclass("string_groups", h.music_groups,
                                             Membership::kEnumerated);
  {
    Predicate p;
    Atom a;
    a.lhs = Term::Candidate({h.members});
    a.op = SetOp::kSubset;
    a.rhs = Term::ClassExtent(play_strings);
    p.AddAtom(a, 0);
    if (!ws->DefineSubclassMembership(string_groups, p).ok()) std::abort();
  }
  AttributeId group_instruments = *db.CreateAttribute(
      h.music_groups, "group_instruments", h.instruments, true);
  if (!ws->DefineAttributeDerivation(
            group_instruments,
            AttributeDerivation::Assign(Term::Self({h.members, h.plays})))
           .ok()) {
    std::abort();
  }
  {
    Predicate c;
    Atom a;
    a.lhs = Term::Candidate({h.members});
    a.op = SetOp::kWeakMatch;
    a.rhs = Term::ClassExtent(h.musicians);
    c.AddAtom(a, 0);
    if (!ws->DefineConstraint("groups_nonempty", h.music_groups, c).ok()) {
      std::abort();
    }
  }
}

/// Runs `ops` random plays-toggles; keeps every view fresh either through an
/// attached engine or by ReevaluateAll after each mutation. Returns ns/op.
double RunConfig(int scale, bool incremental, int ops) {
  auto ws = BuildScaledMusic(scale, /*seed=*/7);
  ScaledMusicHandles h = ResolveScaledMusic(*ws);
  DefineViews(ws.get(), h);
  isis::sdm::Database& db = ws->db();
  std::vector<EntityId> mus(db.Members(h.musicians).begin(),
                            db.Members(h.musicians).end());
  std::vector<EntityId> insts(db.Members(h.instruments).begin(),
                              db.Members(h.instruments).end());
  std::unique_ptr<isis::live::LiveViewEngine> engine;
  if (incremental) {
    engine = std::make_unique<isis::live::LiveViewEngine>(ws.get());
  }

  Rng rng(scale * 1000003u + 17);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    EntityId m = mus[rng.Below(mus.size())];
    EntityId in = insts[rng.Below(insts.size())];
    if (db.GetMulti(m, h.plays).count(in) > 0) {
      (void)db.RemoveFromMulti(m, h.plays, in);
    } else {
      (void)db.AddToMulti(m, h.plays, in);
    }
    if (!incremental) (void)ws->ReevaluateAll();
  }
  auto t1 = std::chrono::steady_clock::now();

  if (engine != nullptr) {
    for (const isis::live::ViewStats& vs : engine->AllViewStats()) {
      std::printf(
          "{\"name\":\"live_views_counters\",\"scale\":%d,\"view\":\"%s\","
          "\"deltas_applied\":%lld,\"entities_retested\":%lld,"
          "\"full_recomputes\":%lld}\n",
          scale, vs.name.c_str(),
          static_cast<long long>(vs.deltas_applied),
          static_cast<long long>(vs.entities_retested),
          static_cast<long long>(vs.full_recomputes));
    }
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         ops;
}

}  // namespace

int main() {
  const int kOps = 100;
  for (int scale : {4, 16, 64}) {
    for (bool incremental : {true, false}) {
      double ns = RunConfig(scale, incremental, kOps);
      std::printf(
          "{\"name\":\"live_views\",\"mode\":\"%s\",\"scale\":%d,"
          "\"ns_per_op\":%.0f}\n",
          incremental ? "incremental" : "recompute", scale, ns);
      std::fflush(stdout);
    }
  }
  return 0;
}
